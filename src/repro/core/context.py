"""Shared mutable state passed to every anonymization rule."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.asn import AsnPermutation, is_public_asn
from repro.core.community import CommunityAnonymizer
from repro.core.config import AnonymizerConfig
from repro.core.ipanon import PrefixPreservingMap
from repro.core.report import AnonymizationReport
from repro.core.strings import StringHasher
from repro.core.tokens import TokenAnonymizer
from repro.netutil import (
    int_to_ip,
    int_to_ip6,
    ip6_to_int,
    ip_to_int,
    is_ipv4,
    is_private_rfc1918,
)

#: Cache sentinel for quad-shaped texts that are not valid addresses
#: (an octet above 255), so repeats skip the failed parse too.
_BAD_QUAD = ()


@dataclass
class RuleContext:
    """Everything a rule needs: the maps, the policy, and the report."""

    config: AnonymizerConfig
    ip_map: PrefixPreservingMap
    asn_map: AsnPermutation
    community: CommunityAnonymizer
    hasher: StringHasher
    token_anon: TokenAnonymizer
    report: AnonymizationReport
    source: str = "<config>"
    line_number: int = 0
    #: Memo for AS-path / community regexp rewriting outcomes, shared
    #: across every context the owning anonymizer creates.  An outcome is
    #: a pure function of (salt, config, pattern) — the permutations
    #: behind it are keyed Feistel networks — so one language enumeration
    #: (up to 65536 regex probes) serves every repeat of the same policy
    #: regexp across the corpus.
    regex_memo: Optional[Dict] = field(default=None, repr=False)
    #: The 128-bit prefix-preserving map contributed by the ``ipv6``
    #: recognizer plugin; ``None`` when that family is inactive.
    ip6_map: Optional[object] = None

    # -- helpers used by several rule modules ---------------------------

    def rewrite_aspath_cached(self, pattern_text: str, anchored: bool = False):
        """Rewrite an AS-path regexp, memoized on the pattern text."""
        from repro.core.regexlang import rewrite_aspath_regex

        memo = self.regex_memo
        key = ("aspath", pattern_text, anchored)
        if memo is not None:
            outcome = memo.get(key)
            if outcome is not None:
                return outcome
        outcome = rewrite_aspath_regex(
            pattern_text,
            self.asn_map.map_asn,
            style=self.config.regex_style,
            max_language=self.config.max_regex_language,
            anchored=anchored,
        )
        if memo is not None:
            memo[key] = outcome
        return outcome

    def rewrite_community_cached(self, pattern_text: str, anchored: bool = False):
        """Rewrite a community regexp, memoized on the pattern text."""
        from repro.core.regexlang import rewrite_community_regex

        memo = self.regex_memo
        key = ("community", pattern_text, anchored)
        if memo is not None:
            outcome = memo.get(key)
            if outcome is not None:
                return outcome
        outcome = rewrite_community_regex(
            pattern_text,
            self.asn_map.map_asn,
            self.community.map_value,
            style=self.config.regex_style,
            max_language=self.config.max_regex_language,
            anchored=anchored,
        )
        if memo is not None:
            memo[key] = outcome
        return outcome

    def map_asn_text(self, text: str) -> str:
        """Map a decimal ASN string, recording it for the leak scanner."""
        asn = int(text)
        if asn > 0xFFFF:
            self.flag("R?", "value {} exceeds the 16-bit ASN space".format(text))
            return text
        if is_public_asn(asn):
            self.report.seen_asns.add(asn)
        self.report.asns_mapped += 1
        return str(self.asn_map.map_asn(asn))

    def _ip_entry(self, text: str):
        """The memoized mapping entry for one dotted-quad text.

        Parse, trie walk, and re-format all collapse to one dict hit for
        repeats — the dominant case once the freeze phase has preloaded
        the corpus.  Entries are ``(mapped text, is_special, public value
        or None, collision_walks delta, collision_allowed delta, mapped
        value)``; a hit replays the trie counter increments the first
        mapping produced, so every counter stays an exact occurrence
        count.  Returns ``None`` for quad-shaped text that is not a valid
        address (negative caching: the failed parse is skipped too).
        """
        ip_map = self.ip_map
        cache = ip_map._text_cache
        entry = cache.get(text)
        if entry is None:
            try:
                value = ip_to_int(text)
            except ValueError:
                cache[text] = _BAD_QUAD
                return None
            special = value in ip_map.specials
            public = None if special or is_private_rfc1918(value) else value
            walks = ip_map.collision_walks
            allowed = ip_map.collision_allowed
            mapped_value = ip_map.map_int(value)
            entry = (
                int_to_ip(mapped_value),
                special,
                public,
                ip_map.collision_walks - walks,
                ip_map.collision_allowed - allowed,
                mapped_value,
            )
            cache[text] = entry
            return entry
        if entry is _BAD_QUAD:
            return None
        ip_map.addresses_mapped += 1
        ip_map.collision_walks += entry[3]
        ip_map.collision_allowed += entry[4]
        return entry

    def _record_ip(self, entry) -> None:
        report = self.report
        if entry[1]:
            report.special_ips_preserved += 1
        else:
            if entry[2] is not None:
                report.seen_public_ips.add(entry[2])
            report.ips_mapped += 1

    def quad_valid(self, text: str) -> bool:
        """Cache-aware ``is_ipv4``: no counters are touched either way.

        For rules that must validate *several* quads before mapping *any*
        of them (``ip address <addr> <mask>``) — mapping eagerly and
        backing out would skew the occurrence counters.
        """
        cache = self.ip_map._text_cache
        entry = cache.get(text)
        if entry is not None:
            return entry is not _BAD_QUAD
        if is_ipv4(text):
            # Not cached: populating would require mapping (trie counters).
            # The subsequent map_ip_text call caches it for the next hit.
            return True
        cache[text] = _BAD_QUAD
        return False

    def map_ip_text(self, text: str) -> str:
        """Map a dotted-quad string, recording public inputs."""
        entry = self._ip_entry(text)
        if entry is None:
            raise ValueError("not a dotted quad: {!r}".format(text))
        self._record_ip(entry)
        return entry[0]

    def map_ip_text_or_none(self, text: str):
        """Like :meth:`map_ip_text`, but ``None`` for invalid quads.

        Lets handlers fold their ``is_ipv4`` pre-check into the memoized
        lookup instead of re-parsing every occurrence.
        """
        entry = self._ip_entry(text)
        if entry is None:
            return None
        self._record_ip(entry)
        return entry[0]

    def map_ip_text_value(self, text: str):
        """``(mapped text, mapped value)`` or ``None`` for invalid quads."""
        entry = self._ip_entry(text)
        if entry is None:
            return None
        self._record_ip(entry)
        return entry[0], entry[5]

    def map_ip6_text_or_none(self, text: str):
        """Map IPv6 text through the plugin's 128-bit trie, or ``None``.

        ``None`` when the ``ipv6`` family is inactive or *text* is not a
        valid IPv6 literal.  Mirrors :meth:`map_ip_text_or_none`: the
        parse, trie walk, and RFC 5952 re-render are memoized on the v6
        map's text cache with counter-replay entries, and invalid texts
        are negatively cached so the candidate regex's false positives
        (``12:30:00``-style tokens) cost one failed parse per distinct
        text.
        """
        ip6_map = self.ip6_map
        if ip6_map is None:
            return None
        cache = ip6_map._text_cache
        entry = cache.get(text)
        if entry is None:
            try:
                value = ip6_to_int(text)
            except ValueError:
                cache[text] = _BAD_QUAD
                return None
            special = ip6_map.is_special(value)
            walks = ip6_map.collision_walks
            allowed = ip6_map.collision_allowed
            mapped_value = ip6_map.map_int(value)
            entry = (
                int_to_ip6(mapped_value),
                special,
                ip6_map.collision_walks - walks,
                ip6_map.collision_allowed - allowed,
            )
            cache[text] = entry
        elif entry is _BAD_QUAD:
            return None
        else:
            ip6_map.addresses_mapped += 1
            ip6_map.collision_walks += entry[2]
            ip6_map.collision_allowed += entry[3]
        if entry[1]:
            self.report.special_ips_preserved += 1
        else:
            self.report.ips_mapped += 1
        return entry[0]

    def map_community_text(self, text: str) -> str:
        mapped = self.community.map_community(text)
        if mapped != text:
            self.report.communities_mapped += 1
            left, _, _ = text.partition(":")
            if left.isdigit() and is_public_asn(int(left)):
                self.report.seen_asns.add(int(left))
        return mapped

    def hash_secret(self, text: str) -> str:
        self.report.secrets_hashed += 1
        return self.hasher.hash_token(text)

    def flag(self, rule_id: str, message: str) -> None:
        self.report.flag(self.source, self.line_number, rule_id, message)
