"""Shared mutable state passed to every anonymization rule."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.asn import AsnPermutation, is_public_asn
from repro.core.community import CommunityAnonymizer
from repro.core.config import AnonymizerConfig
from repro.core.ipanon import PrefixPreservingMap
from repro.core.report import AnonymizationReport
from repro.core.strings import StringHasher
from repro.core.tokens import TokenAnonymizer
from repro.netutil import ip_to_int, is_private_rfc1918


@dataclass
class RuleContext:
    """Everything a rule needs: the maps, the policy, and the report."""

    config: AnonymizerConfig
    ip_map: PrefixPreservingMap
    asn_map: AsnPermutation
    community: CommunityAnonymizer
    hasher: StringHasher
    token_anon: TokenAnonymizer
    report: AnonymizationReport
    source: str = "<config>"
    line_number: int = 0

    # -- helpers used by several rule modules ---------------------------

    def map_asn_text(self, text: str) -> str:
        """Map a decimal ASN string, recording it for the leak scanner."""
        asn = int(text)
        if asn > 0xFFFF:
            self.flag("R?", "value {} exceeds the 16-bit ASN space".format(text))
            return text
        if is_public_asn(asn):
            self.report.seen_asns.add(asn)
        self.report.asns_mapped += 1
        return str(self.asn_map.map_asn(asn))

    def map_ip_text(self, text: str) -> str:
        """Map a dotted-quad string, recording public inputs."""
        value = ip_to_int(text)
        if value in self.ip_map.specials:
            self.report.special_ips_preserved += 1
        else:
            if not is_private_rfc1918(value):
                self.report.seen_public_ips.add(value)
            self.report.ips_mapped += 1
        return self.ip_map.map_address(text)

    def map_community_text(self, text: str) -> str:
        mapped = self.community.map_community(text)
        if mapped != text:
            self.report.communities_mapped += 1
            left, _, _ = text.partition(":")
            if left.isdigit() and is_public_asn(int(left)):
                self.report.seen_asns.add(int(left))
        return mapped

    def hash_secret(self, text: str) -> str:
        self.report.secrets_hashed += 1
        return self.hasher.hash_token(text)

    def flag(self, rule_id: str, message: str) -> None:
        self.report.flag(self.source, self.line_number, rule_id, message)
