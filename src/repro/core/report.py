"""Anonymization reporting: counters, warnings, and leak-scan inputs.

The report serves two purposes from the paper:

* **Accounting** — how many comments/words/tokens/addresses/ASNs were
  transformed (the statistics of Sections 2 and 4).
* **Iterative leak closure** (Section 6.1) — every privileged value the
  anonymizer saw (ASNs before permutation, strings before hashing, public
  addresses before mapping) is recorded so the textual-attack scanner can
  grep the *output* for anything that survived, and lines the anonymizer
  was unsure about are flagged for human review.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

#: Rule-id ranges -> family name (the paper's Section 4 groupings).  The
#: service's ``/metrics`` endpoint aggregates hit counters per family so a
#: dashboard shows "ip rules fired 4M times", not 28 separate series.
_RULE_FAMILY_RANGES = (
    (1, 2, "token"),
    (3, 5, "comment"),
    (6, 9, "misc"),
    (10, 21, "asn"),
    (22, 25, "ip"),
    (26, 28, "secret"),
)

#: Plugin rule-id prefixes -> family name, registered by
#: :mod:`repro.plugins.registry` as plugins load.  Kept here (not in the
#: registry) so family folding stays a pure string lookup with no import
#: of the plugin machinery on the per-hit path.
_PLUGIN_PREFIXES: Dict[str, str] = {}


def register_rule_family_prefix(prefix: str, family: str) -> None:
    """Map rule ids starting with *prefix* to *family* in summaries.

    Longest prefix wins on lookup; re-registering the same prefix for the
    same family is a no-op (plugins may be discovered repeatedly).
    """
    if not prefix:
        raise ValueError("empty rule-id prefix")
    _PLUGIN_PREFIXES[prefix] = family


def rule_family(rule_id: str) -> str:
    """The rule family a rule id belongs to.

    ``R1``-``R28`` map to the paper's Section 4 groupings, ``J*`` ids are
    the JunOS extensions, ``FAIL-CLOSED`` is its own family, registered
    plugin prefixes map to their plugin's family, and anything
    unrecognized lands in ``other`` (a counter must never raise).
    """
    if rule_id == "FAIL-CLOSED":
        return "fail_closed"
    if _PLUGIN_PREFIXES:
        best = ""
        for prefix in _PLUGIN_PREFIXES:
            if len(prefix) > len(best) and rule_id.startswith(prefix):
                best = prefix
        if best:
            return _PLUGIN_PREFIXES[best]
    if rule_id.startswith("J"):
        return "junos"
    if rule_id.startswith("R"):
        digits = ""
        for char in rule_id[1:]:
            if not char.isdigit():
                break
            digits += char
        if digits:
            number = int(digits)
            for low, high, family in _RULE_FAMILY_RANGES:
                if low <= number <= high:
                    return family
    return "other"


@dataclass
class LineFlag:
    """A line highlighted for human review."""

    source: str
    line_number: int
    rule_id: str
    message: str


@dataclass
class AnonymizationReport:
    """Mutable accumulator filled in while anonymizing one network."""

    lines_in: int = 0
    lines_out: int = 0
    words_in: int = 0
    comment_words_removed: int = 0
    comment_lines_removed: int = 0
    banners_removed: int = 0
    tokens_seen: int = 0
    tokens_hashed: int = 0
    ips_mapped: int = 0
    special_ips_preserved: int = 0
    asns_mapped: int = 0
    communities_mapped: int = 0
    regexps_rewritten: int = 0
    phone_numbers_mapped: int = 0
    macs_mapped: int = 0
    secrets_hashed: int = 0
    #: Lines replaced end-to-end by the fail-closed placeholder because a
    #: rule raised mid-line (the raw text never reaches the output).
    lines_failed_closed: int = 0
    rule_hits: Dict[str, int] = field(default_factory=dict)
    flags: List[LineFlag] = field(default_factory=list)
    #: Files whose output was withheld entirely (worker crash or engine
    #: error): ``{source name: reason}``.  Quarantined files are never
    #: written; the reason carries only the exception class name so no raw
    #: config text can leak through a shared report.
    quarantined_files: Dict[str, str] = field(default_factory=dict)
    seen_asns: Set[int] = field(default_factory=set)
    seen_public_ips: Set[int] = field(default_factory=set)

    def record_rule_hit(self, rule_id: str, count: int = 1) -> None:
        if count:
            self.rule_hits[rule_id] = self.rule_hits.get(rule_id, 0) + count

    def flag(self, source: str, line_number: int, rule_id: str, message: str) -> None:
        self.flags.append(LineFlag(source, line_number, rule_id, message))

    def quarantine(self, source: str, reason: str) -> None:
        self.quarantined_files[source] = reason

    def family_hits(self) -> Dict[str, int]:
        """Rule hits aggregated per family (see :func:`rule_family`)."""
        families: Dict[str, int] = {}
        for rule_id, count in self.rule_hits.items():
            family = rule_family(rule_id)
            families[family] = families.get(family, 0) + count
        return families

    @property
    def comment_word_fraction(self) -> float:
        """Fraction of input words that were comments (paper: avg 1.5%)."""
        if self.words_in == 0:
            return 0.0
        return self.comment_words_removed / self.words_in

    def merge(self, other: "AnonymizationReport") -> None:
        """Fold another report (e.g. one file's) into this one."""
        for name in (
            "lines_in",
            "lines_out",
            "words_in",
            "comment_words_removed",
            "comment_lines_removed",
            "banners_removed",
            "tokens_seen",
            "tokens_hashed",
            "ips_mapped",
            "special_ips_preserved",
            "asns_mapped",
            "communities_mapped",
            "regexps_rewritten",
            "phone_numbers_mapped",
            "macs_mapped",
            "secrets_hashed",
            "lines_failed_closed",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for rule_id, count in other.rule_hits.items():
            self.record_rule_hit(rule_id, count)
        self.flags.extend(other.flags)
        self.quarantined_files.update(other.quarantined_files)
        self.seen_asns.update(other.seen_asns)
        self.seen_public_ips.update(other.seen_public_ips)

    def to_dict(self) -> Dict:
        """Machine-readable form (counters + flags; never the raw values
        of seen ASNs/IPs — those stay in memory for the leak scan only)."""
        return {
            "lines_in": self.lines_in,
            "lines_out": self.lines_out,
            "words_in": self.words_in,
            "comment_words_removed": self.comment_words_removed,
            "comment_lines_removed": self.comment_lines_removed,
            "comment_word_fraction": self.comment_word_fraction,
            "banners_removed": self.banners_removed,
            "tokens_seen": self.tokens_seen,
            "tokens_hashed": self.tokens_hashed,
            "ips_mapped": self.ips_mapped,
            "special_ips_preserved": self.special_ips_preserved,
            "asns_mapped": self.asns_mapped,
            "distinct_asns_seen": len(self.seen_asns),
            "communities_mapped": self.communities_mapped,
            "regexps_rewritten": self.regexps_rewritten,
            "phone_numbers_mapped": self.phone_numbers_mapped,
            "macs_mapped": self.macs_mapped,
            "secrets_hashed": self.secrets_hashed,
            "lines_failed_closed": self.lines_failed_closed,
            "quarantined_files": dict(self.quarantined_files),
            "rule_hits": dict(self.rule_hits),
            "flags": [
                {
                    "source": flag.source,
                    "line_number": flag.line_number,
                    "rule_id": flag.rule_id,
                    "message": flag.message,
                }
                for flag in self.flags
            ],
        }

    def summary(self) -> str:
        """Human-readable one-screen summary."""
        lines = [
            "lines: {} in, {} out".format(self.lines_in, self.lines_out),
            "comments: {} lines / {} words removed ({:.2%} of words), {} banners".format(
                self.comment_lines_removed,
                self.comment_words_removed,
                self.comment_word_fraction,
                self.banners_removed,
            ),
            "tokens: {} checked, {} hashed".format(self.tokens_seen, self.tokens_hashed),
            "addresses: {} mapped, {} special values preserved".format(
                self.ips_mapped, self.special_ips_preserved
            ),
            "asns: {} mapped ({} distinct seen)".format(
                self.asns_mapped, len(self.seen_asns)
            ),
            "communities: {} mapped".format(self.communities_mapped),
            "regexps rewritten: {}".format(self.regexps_rewritten),
            "secrets hashed: {}".format(self.secrets_hashed),
            "fail-closed lines: {}".format(self.lines_failed_closed),
            "quarantined files: {}".format(len(self.quarantined_files)),
            "flags for human review: {}".format(len(self.flags)),
        ]
        return "\n".join(lines)
