"""Named crash points at every durability boundary (ALICE-style).

The journal, snapshot, run-manifest, corpus-manifest, and topology
writers each promise a crash-consistency invariant ("fsync before ack",
"tmp+rename, never a prefix", "torn tail discarded, never served").
Those promises are only as good as the crash schedule they were tested
under.  This module turns every durability boundary into a *named crash
point* that ``scripts/crash_explorer.py`` can enumerate: for each point
it re-runs a seeded workload with that point armed, the process SIGKILLs
itself the moment execution reaches the boundary, and the explorer then
recovers and asserts the invariants (no acknowledged data lost, torn
tails discarded, resumed output byte-identical to an uninterrupted run).

Instrumented code calls :func:`crash_here` with a registered name:

    crash_here("journal.append.pre-fsync")

The hook is zero-cost when off: with neither ``REPRO_CRASH_POINT`` nor
``REPRO_CRASH_TRACE`` set in the environment, ``crash_here`` is a single
``is None`` check.  Armed via ``REPRO_CRASH_POINT=<name>[:<nth>]`` the
process dies with ``SIGKILL`` on the *nth* time execution reaches that
point (default: the first) — SIGKILL, not an exception, because the
contract under test is what the *disk* looks like when the process gets
no chance to clean up.  ``REPRO_CRASH_TRACE=<path>`` appends every point
reached to *path* (one name per line) without crashing, so the explorer
can prove a workload actually exercises the points it claims to.

Points whose boundary is a *partial* write (a torn journal record) use
:func:`would_crash` to decide whether to materialize the partial bytes
before calling :func:`crash_here`, so trace mode never tears anything.

The registry is a static table rather than call-site registration so the
explorer can enumerate every point without importing (and executing) the
whole service tier; ``tests/test_crashpoints.py`` keeps the table honest
by tracing a workload through each instrumented subsystem.
"""

from __future__ import annotations

import os
import signal
from typing import Dict, Optional, Tuple

__all__ = [
    "CRASH_POINTS",
    "CRASH_POINT_ENV",
    "CRASH_TRACE_ENV",
    "arm",
    "crash_here",
    "disarm",
    "registered_points",
    "would_crash",
]

CRASH_POINT_ENV = "REPRO_CRASH_POINT"
CRASH_TRACE_ENV = "REPRO_CRASH_TRACE"

#: Every named crash point, in the order a request would meet them.
#: ``<scope>.tmp-written`` / ``<scope>.renamed`` pairs bracket the
#: :func:`repro.core.runner.atomic_write_text` rename discipline for one
#: caller; the journal points bracket the fsync-before-ack discipline.
CRASH_POINTS: Dict[str, str] = {
    "journal.append.pre-write": (
        "journal append: record assembled, nothing on disk yet — the "
        "request must simply vanish (it was never acknowledged)"
    ),
    "journal.append.torn": (
        "journal append: half the record written and flushed, the rest "
        "never — recovery must discard the torn tail, not serve it"
    ),
    "journal.append.pre-fsync": (
        "journal append: full record written and flushed but not yet "
        "fsync'd — still unacknowledged, still discardable"
    ),
    "journal.append.post-fsync": (
        "journal append: record durable but the response not yet sent "
        "(the pre-ack window) — a resubmission must converge on the "
        "journaled result, never re-run the effect twice"
    ),
    "journal.rotate.pre-truncate": (
        "snapshot rotation: snapshot renamed into place, journal not yet "
        "truncated — replay must skip records with seq <= snapshot.seq"
    ),
    "journal.rotate.post-truncate": (
        "snapshot rotation complete: journal truncated and fsync'd"
    ),
    "snapshot.tmp-written": (
        "session snapshot: tmp file written and fsync'd, rename pending "
        "— the old snapshot (or none) must still be what recovery sees"
    ),
    "snapshot.renamed": (
        "session snapshot: renamed into place, rotation not yet begun"
    ),
    "session.meta.tmp-written": (
        "session create: meta.json tmp written, rename pending — a "
        "half-created session directory must not poison recovery"
    ),
    "session.meta.renamed": (
        "session create: meta.json in place, journal not yet opened"
    ),
    "topology.tmp-written": (
        "serve startup: topology.json tmp written, rename pending"
    ),
    "topology.renamed": (
        "serve startup: topology.json renamed into place"
    ),
    "runner.output.tmp-written": (
        "batch runner: an output's tmp file written and fsync'd, rename "
        "pending — no truncated output may ever be observable"
    ),
    "runner.output.renamed": (
        "batch runner: one output renamed into place, manifest stale"
    ),
    "runner.manifest.tmp-written": (
        "batch runner: run manifest tmp written, rename pending — "
        "--resume must fall back to a full, byte-identical re-run"
    ),
    "runner.manifest.renamed": (
        "batch runner: run manifest renamed into place"
    ),
    "corpus.manifest.pre-fsync": (
        "corpus fan-out: resume-manifest line written and flushed but "
        "not fsync'd — --resume must treat the file as not-yet-recorded "
        "or recorded, never as corrupt"
    ),
    "corpus.manifest.post-fsync": (
        "corpus fan-out: resume-manifest line durable, file not yet "
        "re-driven — --resume must skip it and stay byte-identical"
    ),
}


class _CrashState:
    """Parsed arming/tracing state (one instance per process, or None)."""

    __slots__ = ("armed", "nth", "hits", "trace_path")

    def __init__(self, armed: Optional[str], nth: int, trace_path: Optional[str]):
        self.armed = armed
        self.nth = nth
        self.hits = 0
        self.trace_path = trace_path


def _parse_spec(spec: str) -> Tuple[str, int]:
    name, _, nth_text = spec.partition(":")
    name = name.strip()
    if name not in CRASH_POINTS:
        raise ValueError(
            "unknown crash point {!r}; registered points: {}".format(
                name, ", ".join(sorted(CRASH_POINTS))
            )
        )
    nth = 1
    if nth_text.strip():
        nth = int(nth_text)
        if nth < 1:
            raise ValueError("crash point nth must be >= 1 in {!r}".format(spec))
    return name, nth


def _state_from_env() -> Optional[_CrashState]:
    spec = os.environ.get(CRASH_POINT_ENV)
    trace = os.environ.get(CRASH_TRACE_ENV)
    if not spec and not trace:
        return None
    name, nth = _parse_spec(spec) if spec else (None, 1)
    return _CrashState(name, nth, trace or None)


_STATE: Optional[_CrashState] = _state_from_env()


def registered_points() -> Dict[str, str]:
    """The full registry, name -> invariant description (a copy)."""
    return dict(CRASH_POINTS)


def arm(spec: str) -> None:
    """Arm a crash point in-process (tests; production uses the env)."""
    global _STATE
    name, nth = _parse_spec(spec)
    trace = _STATE.trace_path if _STATE is not None else None
    _STATE = _CrashState(name, nth, trace)


def trace_to(path: Optional[str]) -> None:
    """Record reached points to *path* (None stops tracing)."""
    global _STATE
    if path is None and (_STATE is None or _STATE.armed is None):
        _STATE = None
        return
    armed = _STATE.armed if _STATE is not None else None
    nth = _STATE.nth if _STATE is not None else 1
    _STATE = _CrashState(armed, nth, path)


def disarm() -> None:
    """Drop all arming/tracing state (tests)."""
    global _STATE
    _STATE = None


def would_crash(name: str) -> bool:
    """True when the *next* :func:`crash_here` call for *name* will kill
    the process — lets a call site materialize a partial write first."""
    state = _STATE
    if state is None or state.armed != name:
        return False
    return state.hits + 1 >= state.nth


def crash_here(name: str) -> None:
    """Mark that execution reached the crash point *name*.

    No-op when nothing is armed or traced.  When traced, appends the
    name to the trace file.  When armed for *name* and the hit count
    reaches ``nth``, the process SIGKILLs itself — no atexit handlers,
    no flushes, exactly what a power cut leaves behind.
    """
    state = _STATE
    if state is None:
        return
    if name not in CRASH_POINTS:
        raise RuntimeError("unregistered crash point {!r}".format(name))
    if state.trace_path is not None:
        with open(state.trace_path, "a", encoding="utf-8") as handle:
            handle.write(name + "\n")
    if state.armed == name:
        state.hits += 1
        if state.hits >= state.nth:
            os.kill(os.getpid(), signal.SIGKILL)
            os._exit(137)  # unreachable fallback
