"""Miscellaneous context rules — R6 through R9 (paper Section 4.2).

"An additional four rules are needed to anonymize miscellaneous
information, including phone numbers in dialer strings, and so on."
"""

from __future__ import annotations

import hashlib
import re
from typing import List

from repro.core.context import RuleContext
from repro.core.rulebase import Rule


def _hash_digits(ctx: RuleContext, digits: str) -> str:
    """Map a digit string to a same-length pseudorandom digit string."""
    seed = hashlib.sha1(ctx.hasher.salt + b"digits:" + digits.encode()).digest()
    value = int.from_bytes(seed, "big")
    out = []
    for _ in digits:
        out.append(str(value % 10))
        value //= 10
    return "".join(out)


def build_misc_rules() -> List[Rule]:
    rules: List[Rule] = []

    dialer_re = re.compile(r"(\bdialer (?:string|map)\b)(.*)$", re.IGNORECASE)
    phone_re = re.compile(r"\d[\d-]{5,}\d")

    def apply_dialer(line, ctx):
        def handler(match):
            rest = match.group(2)
            pieces = [(match.group(1), False)]
            cursor = 0
            for phone in phone_re.finditer(rest):
                pieces.append((rest[cursor : phone.start()], False))
                digits = phone.group(0).replace("-", "")
                ctx.report.phone_numbers_mapped += 1
                pieces.append((_hash_digits(ctx, digits), True))
                cursor = phone.end()
            pieces.append((rest[cursor:], False))
            return pieces

        return line.apply_rule(dialer_re, handler)

    rules.append(
        Rule(
            "R6",
            "dialer-phone-numbers",
            "misc",
            "Phone numbers in `dialer string` / `dialer map` commands are "
            "replaced by same-length pseudorandom digit strings.",
            apply_dialer,
            trigger="dialer ",
        )
    )

    snmp_meta_re = re.compile(
        r"^(\s*snmp-server (?:location|contact|chassis-id))\s+\S.*$", re.IGNORECASE
    )

    def apply_snmp_meta(line, ctx):
        return line.apply_rule(snmp_meta_re, lambda m: [(m.group(1), True)])

    rules.append(
        Rule(
            "R7",
            "snmp-location-contact",
            "misc",
            "Free text in `snmp-server location|contact|chassis-id` is "
            "removed entirely (it names buildings, cities, and people).",
            apply_snmp_meta,
            trigger="snmp-server ",
        )
    )

    mac_re = re.compile(r"\b([0-9a-f]{4})\.([0-9a-f]{4})\.([0-9a-f]{4})\b", re.IGNORECASE)

    def apply_mac(line, ctx):
        def handler(match):
            raw = (match.group(1) + match.group(2) + match.group(3)).lower()
            digest = hashlib.sha1(ctx.hasher.salt + b"mac:" + raw.encode()).hexdigest()
            ctx.report.macs_mapped += 1
            mapped = digest[:12]
            return [
                ("{}.{}.{}".format(mapped[0:4], mapped[4:8], mapped[8:12]), True)
            ]

        return line.apply_rule(mac_re, handler)

    rules.append(
        Rule(
            "R8",
            "mac-addresses",
            "misc",
            "MAC addresses (hhhh.hhhh.hhhh) map to salted same-format "
            "values (vendor OUIs identify hardware purchases).",
            apply_mac,
            # The gate runs on the lowercased line, so the lowercase-only
            # hex classes here are not a narrowing of the rule's pattern.
            trigger=re.compile(r"\b[0-9a-f]{4}\.[0-9a-f]{4}\.[0-9a-f]{4}\b"),
        )
    )

    domain_re = re.compile(
        r"(\bip (?:domain-name|domain-list|domain name|domain list) |^hostname )(\S+)",
        re.IGNORECASE,
    )

    def apply_domain(line, ctx):
        def handler(match):
            labels = match.group(2).split(".")
            hashed = ".".join(ctx.hasher.hash_token(label) for label in labels)
            return [(match.group(1), False), (hashed, True)]

        return line.apply_rule(domain_re, handler)

    rules.append(
        Rule(
            "R9",
            "domain-names",
            "misc",
            "DNS domain and hostname labels are hashed unconditionally — "
            "even pass-list words leak when arranged into a real domain "
            "name (the 'global crossing' problem applied to domains), and "
            "hostname suffixes must hash consistently with `ip domain-name`.",
            apply_domain,
            trigger=("domain", "hostname "),
        )
    )

    return rules
