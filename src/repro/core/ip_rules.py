"""The IP-locating rules — R22 through R25 (paper Section 4.3).

IP addresses are rewritten through the shared prefix-preserving map; the
map itself passes special values (netmasks, inverse masks, multicast,
loopback) through unchanged, so these rules only need to *find* the
addresses.  Four contexts are distinguished because they carry different
semantics worth asserting (address+mask pairs, prefix notation, classful
``network`` statements, and the generic catch-all).
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.core.context import RuleContext
from repro.core.rulebase import Rule
from repro.netutil import (
    classful_prefix_len,
    int_to_ip,
    ip_to_int,
    network_address,
    wildcard_to_len,
)

_QUAD = r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}"

#: Prefilter hint shared by the quad-matching rules: one cheap scan for a
#: dotted quad gates all of them (most config lines carry no address).
QUAD_HINT = re.compile(_QUAD)

#: IS-IS NET lines (rule X1); also used by the mapping-freeze corpus scan
#: to preload the IP trie with decodable system ids.
ISIS_NET_RE = re.compile(
    r"^(\s*net )(\d{2}(?:\.[0-9a-fA-F]{4})?)((?:\.[0-9a-fA-F]{4}){3})(\.\d{2})\s*$",
    re.IGNORECASE,
)


def decode_system_id(dotted: str) -> Optional[int]:
    """Decode a ``.hhhh.hhhh.hhhh`` system id into the IPv4 int it encodes.

    Returns ``None`` when the system id does not follow the
    loopback-encoding convention (non-decimal digits or octets > 255).
    """
    digits = dotted.replace(".", "")
    if digits.isdigit() and len(digits) == 12:
        octets = [int(digits[i : i + 3]) for i in range(0, 12, 3)]
        if all(o <= 255 for o in octets):
            return (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
    return None


def build_ip_rules() -> List[Rule]:
    rules: List[Rule] = []

    addr_mask_re = re.compile(
        r"(\bip address )(" + _QUAD + r")( )(" + _QUAD + r")", re.IGNORECASE
    )

    def apply_addr_mask(line, ctx):
        def handler(match):
            # Both quads must be valid before either is mapped (mapping
            # eagerly would skew counters when the other one is bogus).
            if not (ctx.quad_valid(match.group(2)) and ctx.quad_valid(match.group(4))):
                return None
            return [
                (match.group(1), False),
                (ctx.map_ip_text(match.group(2)), True),
                (match.group(3), False),
                (ctx.map_ip_text(match.group(4)), True),
            ]

        return line.apply_rule(addr_mask_re, handler)

    rules.append(
        Rule(
            "R22",
            "ip-address-mask",
            "ip",
            "`ip address <addr> <mask>` interface pairs (Figure 1 lines "
            "10, 14); the netmask is special and passes through unchanged.",
            apply_addr_mask,
            trigger="ip address ",
        )
    )

    prefix_re = re.compile(r"\b(" + _QUAD + r")/(\d{1,2})\b")

    def apply_prefix(line, ctx):
        def handler(match):
            if int(match.group(2)) > 32:
                return None
            mapped = ctx.map_ip_text_or_none(match.group(1))
            if mapped is None:
                return None
            return [
                (mapped, True),
                ("/" + match.group(2), True),
            ]

        return line.apply_rule(prefix_re, handler)

    rules.append(
        Rule(
            "R23",
            "prefix-notation",
            "ip",
            "`a.b.c.d/len` prefixes; the length is structural and kept.",
            apply_prefix,
            trigger=QUAD_HINT,
        )
    )

    network_re = re.compile(r"^(\s*network )(" + _QUAD + r")(\s.*)?$", re.IGNORECASE)

    def apply_network(line, ctx):
        def handler(match):
            mapped = ctx.map_ip_text_or_none(match.group(2))
            if mapped is None:
                return None
            if not match.group(3):
                # A bare `network <addr>` (RIP/IGRP/EIGRP classful form):
                # IOS canonicalizes these to the classful network address,
                # so truncate the mapped address the same way.  Class
                # preservation guarantees the classful length is unchanged.
                value = ip_to_int(mapped)
                length = classful_prefix_len(value)
                mapped = int_to_ip(network_address(value, length))
            return [
                (match.group(1), False),
                (mapped, True),
                (match.group(3) or "", False),
            ]

        return line.apply_rule(network_re, handler)

    rules.append(
        Rule(
            "R24",
            "classful-network",
            "ip",
            "`network <addr>` statements of RIP/IGRP/EIGRP/BGP (Figure 1 "
            "line 35); class preservation keeps classful semantics valid.",
            apply_network,
            trigger="network ",
        )
    )

    pair_re = re.compile(r"\b(" + _QUAD + r")(\s+)(" + _QUAD + r")\b")
    bare_re = re.compile(r"\b(" + _QUAD + r")\b")

    def apply_bare(line, ctx):
        def pair_handler(match):
            wildcard_text = match.group(3)
            try:
                wildcard = ip_to_int(wildcard_text)
            except ValueError:
                return None
            if wildcard_to_len(wildcard) is None or wildcard == 0:
                return None  # not an address + contiguous-wildcard pair
            pair = ctx.map_ip_text_value(match.group(1))
            if pair is None:
                return None
            # Clear the wildcard (don't-care) bits of the mapped base: the
            # ACL semantics are identical and the output reads like the
            # canonical form operators write.
            mapped = pair[1] & ~wildcard & 0xFFFFFFFF
            return [
                (int_to_ip(mapped), True),
                (match.group(2), False),
                (wildcard_text, True),
            ]

        def handler(match):
            mapped = ctx.map_ip_text_or_none(match.group(1))
            if mapped is None:
                return None
            return [(mapped, True)]

        hits = line.apply_rule(pair_re, pair_handler)
        return hits + line.apply_rule(bare_re, handler)

    rules.append(
        Rule(
            "R25",
            "bare-dotted-quad",
            "ip",
            "Catch-all for any remaining dotted quad (neighbor addresses, "
            "ACL address/wildcard pairs, server addresses, static routes); "
            "wildcards are special values and pass through unchanged.",
            apply_bare,
            trigger=QUAD_HINT,
        )
    )

    net_re = ISIS_NET_RE

    def apply_isis_net(line, ctx):
        def handler(match):
            mapped = _map_system_id(ctx, match.group(3))
            return [
                (match.group(1), False),
                (match.group(2), True),   # AFI+area: locally significant
                (mapped, True),
                (match.group(4), True),
            ]

        return line.apply_rule(net_re, handler)

    rules.append(
        Rule(
            "X1",
            "isis-net-system-id",
            "extension",
            "IS-IS NET system ids conventionally encode the loopback "
            "address (6.0.0.3 -> 0060.0000.0003); decode, map through the "
            "shared IP trie, and re-encode so the correspondence survives. "
            "Non-decodable system ids are hashed. (Extension beyond the "
            "paper's 28 IOS rules.)",
            apply_isis_net,
            trigger="net ",
        )
    )

    return rules


def _map_system_id(ctx: RuleContext, dotted: str) -> str:
    """Map a `.hhhh.hhhh.hhhh` system id, preserving the loopback link."""
    value = decode_system_id(dotted)
    if value is not None:
        mapped = ctx.ip_map.map_int(value)
        padded = "{:03d}{:03d}{:03d}{:03d}".format(
            (mapped >> 24) & 0xFF, (mapped >> 16) & 0xFF,
            (mapped >> 8) & 0xFF, mapped & 0xFF,
        )
        return ".{}.{}.{}".format(padded[0:4], padded[4:8], padded[8:12])
    import hashlib

    digits = dotted.replace(".", "")
    digest = hashlib.sha1(ctx.hasher.salt + b"sysid:" + digits.encode()).hexdigest()
    return ".{}.{}.{}".format(digest[0:4], digest[4:8], digest[8:12])
