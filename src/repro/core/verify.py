"""Independent verification of regexp rewrites.

The rewrite machinery computes languages with Python's ``re`` (the fast
path).  This module re-checks rewrite outcomes using the library's *own*
NFA/DFA matcher — a fully independent implementation — so a bug in the
translation to Python syntax cannot silently produce a wrong-but-
self-consistent rewrite.  Used by the test suite and available to
operators who want a second opinion before publishing data (the paper's
"whatever additional steps they felt necessary to verify the
anonymization").
"""

from __future__ import annotations

import re
from typing import Callable, Set

from repro.automata.matcher import RegexMatcher
from repro.core.asn import is_public_asn
from repro.core.regexlang import RewriteOutcome

#: Subjects reused across calls (building them dominates otherwise).
_SUBJECTS = tuple(str(n) for n in range(65536))


def independent_language(pattern: str, anchored: bool = False) -> Set[int]:
    """The ASN language of *pattern* per our own automata matcher."""
    if anchored:
        matcher = RegexMatcher("^(" + pattern + ")$")
    else:
        matcher = RegexMatcher(pattern)
    return {n for n in range(65536) if matcher.matches(_SUBJECTS[n])}


def verify_community_rewrite(
    outcome: RewriteOutcome,
    asn_mapper: Callable[[int], int],
    value_mapper: Callable[[int], int],
    anchored: bool = False,
    samples: int = 400,
    seed: int = 0,
) -> bool:
    """Sampled equivalence check for community-regexp rewrites.

    The pair space is 2^32, so instead of brute force we check, over a
    deterministic sample of (asn, value) pairs biased toward the original
    pattern's digits: ``original matches "a:v"`` iff ``rewritten matches
    "map(a):map(v)"`` (publics mapped, privates fixed).
    """
    import random as _random

    if outcome.flagged:
        matcher = RegexMatcher(outcome.rewritten)
        return not any(
            matcher.matches("{}:{}".format(a, v))
            for a in (701, 65000)
            for v in (0, 7100)
        )
    if anchored:
        original = RegexMatcher("^(" + outcome.original + ")$")
        rewritten = RegexMatcher("^(" + outcome.rewritten + ")$")
    else:
        original = RegexMatcher(outcome.original)
        rewritten = RegexMatcher(outcome.rewritten)

    rng = _random.Random(seed)
    digit_seeds = [int(d) for d in re.findall(r"\d+", outcome.original) if int(d) <= 0xFFFF]
    candidates = set(digit_seeds)
    for base in digit_seeds:
        candidates.update(
            min(0xFFFF, max(0, base + delta)) for delta in (-1, 1, 10, 100, 499)
        )
    while len(candidates) < samples:
        candidates.add(rng.randrange(0, 0x10000))
    def agree(a: int, v: int) -> bool:
        subject = "{}:{}".format(a, v)
        mapped_subject = "{}:{}".format(
            asn_mapper(a) if is_public_asn(a) else a, value_mapper(v)
        )
        return original.matches(subject) == rewritten.matches(mapped_subject)

    # The digit seeds' cross product covers the pattern's own pairs (the
    # cases a wrong rewrite is most likely to get wrong) ...
    for a in digit_seeds:
        for v in digit_seeds:
            if not agree(a, v):
                return False
    # ... and the random sample covers everything else.
    ordered = sorted(candidates)
    for a in ordered[:samples]:
        for v in rng.sample(ordered, min(6, len(ordered))):
            if not agree(a, v):
                return False
    return True


def verify_aspath_rewrite(
    outcome: RewriteOutcome,
    asn_mapper: Callable[[int], int],
    anchored: bool = False,
) -> bool:
    """Re-derive the expected language and compare against the rewrite.

    Returns True when ``language(rewritten) == mapped(language(original))``
    under the independent matcher.  Flagged outcomes (inert replacements)
    verify as True when the rewritten pattern accepts nothing.
    """
    rewritten_language = independent_language(outcome.rewritten, anchored)
    if outcome.flagged:
        return rewritten_language == set()
    original_language = independent_language(outcome.original, anchored)
    expected = {
        asn_mapper(n) if is_public_asn(n) else n for n in original_language
    }
    return rewritten_language == expected
