"""Core anonymization engine — the paper's primary contribution.

Public API::

    from repro.core import Anonymizer, AnonymizerConfig

    anon = Anonymizer(AnonymizerConfig(salt=b"owner-secret"))
    result = anon.anonymize_text(config_text)
    result_by_router = anon.anonymize_network({"cr1": text1, "cr2": text2})

One :class:`Anonymizer` instance holds the per-network mapping state (IP
trie, ASN permutation, string hashes) so that relationships are preserved
*across* all the configs of one network.  Use a fresh instance (and a fresh
owner salt) per network owner.
"""

from repro.core.config import AnonymizerConfig
from repro.core.engine import Anonymizer, AnonymizedNetwork
from repro.core.report import AnonymizationReport
from repro.core.passlist import PassList, DEFAULT_PASSLIST
from repro.core.ipanon import PrefixPreservingMap, SpecialAddresses
from repro.core.cryptopan import CryptoPanMap
from repro.core.asn import AsnPermutation, is_public_asn, is_private_asn
from repro.core.community import CommunityAnonymizer
from repro.core.strings import StringHasher
from repro.core.faults import FaultInjected, FaultPlan, build_fault_plan
from repro.core.runner import RunResult, RunnerError, run_anonymization

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "build_fault_plan",
    "RunResult",
    "RunnerError",
    "run_anonymization",
    "Anonymizer",
    "AnonymizedNetwork",
    "AnonymizerConfig",
    "AnonymizationReport",
    "PassList",
    "DEFAULT_PASSLIST",
    "PrefixPreservingMap",
    "SpecialAddresses",
    "CryptoPanMap",
    "AsnPermutation",
    "is_public_asn",
    "is_private_asn",
    "CommunityAnonymizer",
    "StringHasher",
]
