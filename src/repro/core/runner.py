"""Fail-closed run orchestration: atomic outputs, manifest, resume.

The paper's premise is that anonymization must be trustworthy enough to
*publish* the output (Section 2: a single leaked identifier breaks the
anonymization of the corpus).  That demands two operational guarantees on
top of the engine's per-line fail-closed rule:

* **No output file is ever observable half-written.**  Every output is
  written to a ``*.tmp`` sibling and moved into place with
  :func:`os.replace` (atomic on POSIX and Windows).  A crash mid-write
  leaves at most a ``*.tmp`` that the next run overwrites — never a
  truncated ``*.anon`` that an operator might mistake for a complete,
  safe-to-share file.

* **A crashed run can be resumed without re-anonymizing what already
  completed.**  Each run writes a JSON *manifest* recording per-file
  status and the SHA-256 digest of each written output.  ``resume=True``
  skips files whose recorded digest still matches the file on disk and
  re-runs everything else (quarantined, write-failed, or missing).
  Because callers freeze mapping state over the *full* corpus before
  rewriting, a resumed run is byte-identical to a clean one.

The manifest records a fingerprint of the owner salt (a keyed hash — the
salt itself is never stored) and refuses to resume under a different
salt: mixing outputs of two salts in one directory would silently break
the corpus-wide referential integrity the paper depends on.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.core.crashpoints import crash_here
from repro.core.digests import digest_text
from repro.core.engine import Anonymizer
from repro.core.faults import FaultPlan
from repro.core.parallel import anonymize_files

__all__ = [
    "MANIFEST_FORMAT_VERSION",
    "MANIFEST_NAME",
    "FileOutcome",
    "RunResult",
    "RunnerError",
    "atomic_write_text",
    "load_manifest",
    "resolve_out_paths",
    "run_anonymization",
    "salt_fingerprint",
]

MANIFEST_FORMAT_VERSION = 1

#: Default manifest file name (written inside the output directory).
MANIFEST_NAME = ".repro-run-manifest.json"


class RunnerError(RuntimeError):
    """A run cannot proceed safely (corrupt manifest, salt mismatch...)."""


# The manifest digest is the shared content digest of repro.core.digests
# (also the basis of the service's idempotency keys); kept under the old
# private name for the handful of in-module callers.
_digest_text = digest_text


def salt_fingerprint(salt: bytes) -> str:
    """Keyed fingerprint of an owner salt (equality only, never the salt).

    Keyed so the fingerprint reveals nothing about a low-entropy salt
    beyond equality between runs.  Shared by the run manifest (refuses to
    resume under a different salt) and the service (a session advertises
    its fingerprint so a client can verify it is talking to the mapping
    universe it expects without ever sending the salt again).
    """
    return hashlib.sha256(b"repro-run-manifest\x00" + salt).hexdigest()[:16]


def resolve_out_paths(names, out_dir, suffix: str) -> Dict[str, Path]:
    """Map every input name to a collision-free output path.

    Without *out_dir* each output lands next to its input
    (``<input><suffix>``), which cannot collide.  With *out_dir* the
    natural ``out_dir/<basename><suffix>`` scheme silently overwrites
    outputs when two inputs share a basename (``siteA/rtr1.conf`` and
    ``siteB/rtr1.conf``) — exactly the corpus shape of a multi-site
    network.  When that happens, the input paths are mirrored below their
    common ancestor instead (``out_dir/siteA/rtr1.conf<suffix>``), so
    every input keeps a distinct output.  If even the mirrored paths
    collide (two spellings of the same file), the run refuses to start
    rather than guess which output to keep.
    """
    names = list(names)
    if out_dir is None:
        return {
            name: Path(name).with_name(Path(name).name + suffix)
            for name in names
        }
    out_dir = Path(out_dir)
    by_basename: Dict[str, int] = {}
    for name in names:
        base = Path(name).name
        by_basename[base] = by_basename.get(base, 0) + 1
    if all(count == 1 for count in by_basename.values()):
        return {name: out_dir / (Path(name).name + suffix) for name in names}
    absolutes = {name: os.path.abspath(name) for name in names}
    common = os.path.commonpath(list(absolutes.values()))
    if len(names) == 1 or os.path.isfile(common):
        common = os.path.dirname(common)
    paths = {
        name: out_dir / (os.path.relpath(absolutes[name], common) + suffix)
        for name in names
    }
    taken: Dict[Path, str] = {}
    for name, path in sorted(paths.items()):
        if path in taken:
            raise RunnerError(
                "output path collision: {!r} and {!r} both map to {} — "
                "rename one input or pass distinct paths".format(
                    taken[path], name, path
                )
            )
        taken[path] = name
    return paths


def atomic_write_text(
    path: Path,
    text: str,
    fault_plan: Optional[FaultPlan] = None,
    name: Optional[str] = None,
    crash_scope: Optional[str] = None,
) -> str:
    """Write *text* to *path* atomically; return its content digest.

    The text lands in ``<path>.tmp`` (fsynced) and is moved into place
    with :func:`os.replace`, so *path* either keeps its old content or
    holds the complete new content — never a prefix.  On any failure the
    temporary file is removed before the exception propagates.

    *crash_scope* names the durability boundary this write implements
    (``"snapshot"``, ``"topology"``, ...): the two crash points
    ``<scope>.tmp-written`` and ``<scope>.renamed`` bracket the rename so
    the explorer can kill the process on either side of it.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        if crash_scope is not None:
            crash_here(crash_scope + ".tmp-written")
        if fault_plan is not None and fault_plan.fail_write_once(
            name if name is not None else str(path)
        ):
            raise OSError("injected write failure for {}".format(path.name))
        os.replace(tmp, path)
        if crash_scope is not None:
            crash_here(crash_scope + ".renamed")
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return _digest_text(text)


@dataclass
class FileOutcome:
    """What happened to one input file during a run."""

    name: str
    #: "written" | "skipped" (resume hit) | "quarantined" | "write-failed"
    status: str
    out_path: Optional[str] = None
    digest: Optional[str] = None
    detail: str = ""


@dataclass
class RunResult:
    """Everything a caller needs to report on (and exit from) a run."""

    #: Anonymized text per input name — written *and* resume-skipped files
    #: (skipped text is re-read from disk so leak scanning and model
    #: export still cover the whole corpus).  Quarantined/write-failed
    #: files are absent: their output is withheld.
    outputs: Dict[str, str] = field(default_factory=dict)
    outcomes: Dict[str, FileOutcome] = field(default_factory=dict)
    manifest_path: Optional[str] = None

    @property
    def quarantined(self) -> Dict[str, str]:
        return {
            o.name: o.detail
            for o in self.outcomes.values()
            if o.status == "quarantined"
        }

    @property
    def write_failed(self) -> Dict[str, str]:
        return {
            o.name: o.detail
            for o in self.outcomes.values()
            if o.status == "write-failed"
        }

    @property
    def dirty(self) -> bool:
        """True when any file's output was withheld (unsafe to call the
        run complete)."""
        return any(
            o.status in ("quarantined", "write-failed")
            for o in self.outcomes.values()
        )


def load_manifest(path) -> Optional[Dict]:
    """Load a run manifest; ``None`` if absent, :class:`RunnerError` if
    unusable (corrupt JSON, wrong version) — resuming over a manifest we
    cannot trust would risk keeping stale or foreign outputs."""
    path = Path(path)
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise RunnerError(
            "run manifest {} is corrupt or unreadable ({}); delete it or "
            "rerun without --resume".format(path, type(exc).__name__)
        ) from exc
    if not isinstance(data, dict) or data.get("format_version") != MANIFEST_FORMAT_VERSION:
        raise RunnerError(
            "run manifest {} has unsupported format_version {!r} "
            "(expected {})".format(
                path,
                data.get("format_version") if isinstance(data, dict) else None,
                MANIFEST_FORMAT_VERSION,
            )
        )
    return data


def _resume_skips(
    previous: Dict,
    configs: Dict[str, str],
    out_path_for: Callable[[str], Path],
) -> Dict[str, tuple]:
    """Files a resumed run may skip — recorded as written, still on disk,
    digest intact — as ``{name: (outcome, anonymized text)}``.  Anything
    else (quarantined last time, write-failed, edited, deleted) re-runs."""
    skips: Dict[str, tuple] = {}
    for name in configs:
        entry = previous.get(name)
        if not isinstance(entry, dict):
            continue
        if entry.get("status") != "written" or not entry.get("digest"):
            continue
        out_path = Path(out_path_for(name))
        if not out_path.is_file():
            continue
        try:
            text = out_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        if _digest_text(text) != entry["digest"]:
            continue
        outcome = FileOutcome(
            name, "skipped", out_path=str(out_path), digest=entry["digest"]
        )
        skips[name] = (outcome, text)
    return skips


def run_anonymization(
    anonymizer: Anonymizer,
    configs: Dict[str, str],
    out_path_for: Callable[[str], Path],
    jobs: int = 1,
    resume: bool = False,
    manifest_path=None,
) -> RunResult:
    """Anonymize *configs* and write each output atomically.

    The caller must already have frozen mapping state over the full
    corpus when using ``jobs > 1`` or ``resume=True`` (the CLI forces the
    freeze for both) — the freeze is what makes a resumed or parallel run
    byte-identical to a clean sequential one.

    Per-file failures never abort the run: quarantined files (engine
    error or dead worker) and failed writes are recorded in the result
    and the manifest, and their output is withheld entirely.
    """
    plan = anonymizer.fault_plan
    fingerprint = salt_fingerprint(anonymizer.config.salt)

    previous: Dict = {}
    if resume:
        if manifest_path is None:
            raise RunnerError("resume requires a manifest path")
        manifest = load_manifest(manifest_path)
        if manifest is not None:
            if manifest.get("salt_fingerprint") != fingerprint:
                raise RunnerError(
                    "run manifest {} was written under a different salt; "
                    "resuming would mix incompatible mappings in one "
                    "output directory".format(manifest_path)
                )
            files = manifest.get("files")
            previous = files if isinstance(files, dict) else {}

    result = RunResult(
        manifest_path=str(manifest_path) if manifest_path is not None else None
    )
    skips = _resume_skips(previous, configs, out_path_for) if previous else {}
    for name, (outcome, text) in skips.items():
        result.outputs[name] = text
        result.outcomes[name] = outcome

    todo = {name: text for name, text in configs.items() if name not in skips}
    rewritten = anonymize_files(anonymizer, todo, jobs=jobs) if todo else {}

    for name in sorted(todo):
        if name not in rewritten:
            reason = anonymizer.report.quarantined_files.get(
                name, "anonymization failed"
            )
            result.outcomes[name] = FileOutcome(
                name, "quarantined", detail=reason
            )
            continue
        out_path = Path(out_path_for(name))
        try:
            digest = atomic_write_text(
                out_path, rewritten[name], plan, name,
                crash_scope="runner.output",
            )
        except OSError as exc:
            result.outcomes[name] = FileOutcome(
                name, "write-failed", str(out_path), detail=type(exc).__name__
            )
            continue
        result.outputs[name] = rewritten[name]
        result.outcomes[name] = FileOutcome(
            name, "written", str(out_path), digest
        )

    if manifest_path is not None:
        manifest = {
            "format_version": MANIFEST_FORMAT_VERSION,
            "salt_fingerprint": fingerprint,
            "files": {
                name: {
                    # A resume-skipped file is still a written file.
                    "status": "written"
                    if outcome.status == "skipped"
                    else outcome.status,
                    "digest": outcome.digest,
                    "out_path": outcome.out_path,
                    "detail": outcome.detail,
                }
                for name, outcome in sorted(result.outcomes.items())
            },
        }
        atomic_write_text(
            Path(manifest_path),
            json.dumps(manifest, indent=2, sort_keys=True),
            crash_scope="runner.manifest",
        )
    return result
