"""Command-line interface: ``repro-generate``.

Generates a synthetic network (or the full paper-calibrated 31-network
corpus) and writes the config files to disk — material for trying the
anonymizer, building demos, or testing downstream tools without access to
any real configs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.iosgen import NetworkSpec, dataset_statistics, generate_network, paper_dataset


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-generate",
        description="Generate synthetic router configuration corpora "
        "(the substitute for the IMC'04 paper's proprietary dataset).",
    )
    parser.add_argument("out_dir", help="directory to write configs into")
    parser.add_argument("--name", default="synthnet", help="network name")
    parser.add_argument(
        "--kind", choices=("enterprise", "backbone"), default="enterprise"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--pops", type=int, default=3, help="PoPs/sites")
    parser.add_argument(
        "--igp", choices=("ospf", "rip", "eigrp"), default="ospf"
    )
    parser.add_argument(
        "--junos-fraction", type=float, default=0.0,
        help="fraction of routers rendered in JunOS syntax",
    )
    parser.add_argument(
        "--paper-corpus", action="store_true",
        help="generate the full 31-network paper-calibrated corpus instead "
        "(one subdirectory per network)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="corpus scale factor for --paper-corpus (1.0 = full size)",
    )
    return parser


def _write_network(network, directory: Path) -> int:
    directory.mkdir(parents=True, exist_ok=True)
    for name, text in sorted(network.configs.items()):
        (directory / (name + ".cfg")).write_text(text)
    return len(network.configs)


def main(argv=None) -> int:
    args = build_arg_parser().parse_args(argv)
    out_dir = Path(args.out_dir)

    if args.paper_corpus:
        networks = paper_dataset(seed=args.seed or 42, scale=args.scale)
        total = 0
        for network in networks:
            total += _write_network(network, out_dir / network.name)
        stats = dataset_statistics(networks)
        print(
            "wrote {} networks / {} routers / {} lines to {}".format(
                stats["networks"], stats["routers"], stats["total_lines"], out_dir
            )
        )
        print(
            "config sizes: min {} / P25 {:.0f} / P90 {:.0f} / max {}".format(
                stats["min_lines"], stats["p25_lines"],
                stats["p90_lines"], stats["max_lines"],
            )
        )
        return 0

    spec = NetworkSpec(
        name=args.name,
        kind=args.kind,
        seed=args.seed,
        num_pops=args.pops,
        igp=args.igp,
        junos_fraction=args.junos_fraction,
    )
    network = generate_network(spec)
    count = _write_network(network, out_dir)
    lines = sum(len(t.splitlines()) for t in network.configs.values())
    print("wrote {} configs ({} lines) to {}".format(count, lines, out_dir))
    print(
        "next: repro-anonymize {} --salt 'your-secret' --out-dir {}-anon "
        "--report --scan-leaks".format(out_dir, out_dir)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
