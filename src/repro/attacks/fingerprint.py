"""Fingerprinting attacks (paper Sections 6.2–6.3) and their measurement.

The structure-preserving property cuts both ways: "because the IP address
anonymization is structure preserving, the number of subnets of different
sizes is the same in pre- and post-anonymization configs", so an attacker
who can measure a candidate physical network's subnet-size distribution
(or its peering structure) could match it against anonymized configs.

The paper leaves open "whether address space usage fingerprints are
sufficiently unique to enable the identification of networks" — we measure
exactly that on the synthetic corpus: fingerprint uniqueness, pairwise
distances, and the end-to-end re-identification rate.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.configmodel.network import ParsedNetwork

#: A fingerprint is a canonical, hashable summary tuple.
Fingerprint = Tuple[Tuple[int, int], ...]


def subnet_fingerprint(network: ParsedNetwork) -> Fingerprint:
    """Subnet-size histogram as ((prefix_len, count), ...) sorted (§6.2)."""
    return tuple(sorted(network.subnet_size_histogram().items()))


def peering_fingerprint(network: ParsedNetwork) -> Fingerprint:
    """Peering structure (§6.3): the multiset of eBGP sessions per
    peering router, as ((session_count, router_count), ...)."""
    per_router = network.ebgp_sessions_per_router()
    shape = Counter(per_router.values())
    return tuple(sorted(shape.items()))


def fingerprint_distance(a: Fingerprint, b: Fingerprint) -> int:
    """L1 distance between two fingerprints (treated as sparse vectors)."""
    da, db = dict(a), dict(b)
    keys = set(da) | set(db)
    return sum(abs(da.get(k, 0) - db.get(k, 0)) for k in keys)


@dataclass
class UniquenessReport:
    total: int
    unique: int
    largest_collision_group: int
    entropy_bits: float
    min_nonzero_distance: int

    @property
    def unique_fraction(self) -> float:
        return self.unique / self.total if self.total else 0.0


def fingerprint_uniqueness(fingerprints: Sequence[Fingerprint]) -> UniquenessReport:
    """How identifying a fingerprint family is across a candidate set."""
    counts = Counter(fingerprints)
    unique = sum(1 for fp, count in counts.items() if count == 1)
    total = len(fingerprints)
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    distances = [
        fingerprint_distance(a, b)
        for i, a in enumerate(fingerprints)
        for b in fingerprints[i + 1 :]
    ]
    nonzero = [d for d in distances if d > 0]
    return UniquenessReport(
        total=total,
        unique=unique,
        largest_collision_group=max(counts.values()) if counts else 0,
        entropy_bits=entropy,
        min_nonzero_distance=min(nonzero) if nonzero else 0,
    )


@dataclass
class ReidentificationResult:
    attempted: int
    correct: int
    ambiguous: int

    @property
    def success_rate(self) -> float:
        return self.correct / self.attempted if self.attempted else 0.0


def reidentification_experiment(
    pre_networks: Dict[str, ParsedNetwork],
    post_networks: Dict[str, ParsedNetwork],
    fingerprint_fn: Callable[[ParsedNetwork], Fingerprint] = subnet_fingerprint,
) -> ReidentificationResult:
    """End-to-end matching attack.

    The attacker holds fingerprints of every *candidate* physical network
    (``pre_networks``, what probing the Internet would yield) and one
    anonymized config set per victim (``post_networks``).  A victim is
    re-identified when its anonymized fingerprint matches exactly one
    candidate — the right one.
    """
    candidate_db: Dict[str, Fingerprint] = {
        name: fingerprint_fn(network) for name, network in pre_networks.items()
    }
    attempted = correct = ambiguous = 0
    for name, network in post_networks.items():
        attempted += 1
        target = fingerprint_fn(network)
        matches = [cand for cand, fp in candidate_db.items() if fp == target]
        if len(matches) == 1 and matches[0] == name:
            correct += 1
        elif len(matches) > 1:
            ambiguous += 1
    return ReidentificationResult(attempted, correct, ambiguous)


def interface_mix_fingerprint(network: ParsedNetwork) -> Fingerprint:
    """Interface-type histogram as a fingerprint (another preserved shape).

    Type names are reduced to stable 16-bit tags (crc32, not Python's
    per-process ``hash``) so fingerprints compare across runs.
    """
    import zlib

    return tuple(sorted(
        (zlib.crc32(kind.encode()) & 0xFFFF, count)
        for kind, count in network.interface_type_histogram().items()
    ))


def size_fingerprint(network: ParsedNetwork) -> Fingerprint:
    """Router count and interface count — the coarsest preserved shape."""
    return (
        (0, len(network.routers)),
        (1, network.total_interfaces()),
    )


def combined_fingerprint(network: ParsedNetwork) -> Tuple[Fingerprint, ...]:
    """All preserved shapes together — the attacker's best case."""
    return (
        subnet_fingerprint(network),
        peering_fingerprint(network),
        interface_mix_fingerprint(network),
        size_fingerprint(network),
    )


def feature_entropy(fingerprints: Sequence) -> float:
    """Empirical identification entropy (bits) of one feature family."""
    counts = Counter(fingerprints)
    total = len(fingerprints)
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy
