"""Attack and vulnerability analysis (paper Section 6).

* :mod:`repro.attacks.textual` — the textual-leak scanner and the iterative
  rule-refinement loop of Section 6.1.
* :mod:`repro.attacks.fingerprint` — the subnet-size-histogram and
  peering-structure fingerprints of Sections 6.2–6.3, plus the uniqueness
  measurement the paper defers to future work.
"""

from repro.attacks.textual import Leak, scan_for_leaks, iterative_closure
from repro.attacks.fingerprint import (
    subnet_fingerprint,
    peering_fingerprint,
    fingerprint_uniqueness,
    reidentification_experiment,
)

__all__ = [
    "Leak",
    "scan_for_leaks",
    "iterative_closure",
    "subnet_fingerprint",
    "peering_fingerprint",
    "fingerprint_uniqueness",
    "reidentification_experiment",
]
