"""Textual-leak scanning and the iterative closure loop (paper Section 6.1).

Two scanners:

* :func:`scan_for_leaks` — the paper's heuristic: "the anonymizer can
  record all AS numbers it sees before hashing them, and then grep out all
  lines from the anonymized configs that still include any of those
  numbers."  Like the paper's tool it can false-positive on coincidental
  integers (the Genuity AS-1 footnote); its output is a *highlight list
  for human review*.
* :func:`structured_asn_audit` — a precise oracle for tests: parse the
  anonymized output and check that no known ASN-carrying field still holds
  an original public ASN.

:func:`iterative_closure` mechanizes the paper's methodology: start from a
deliberately incomplete rule set, anonymize, scan, let the "operator"
(automated here: match leaked lines against the disabled rules' patterns)
add rules, and repeat.  The paper reports convergence in fewer than 5
iterations; the benchmark measures ours.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.configmodel import parse_config
from repro.core.asn import is_public_asn
from repro.core.config import AnonymizerConfig
from repro.core.engine import Anonymizer
from repro.core.line import SegmentedLine
from repro.core.regexlang import asn_language
from repro.netutil import int_to_ip

try:
    from functools import lru_cache
except ImportError:  # pragma: no cover
    lru_cache = None


@lru_cache(maxsize=4096)
def _cached_language(pattern: str):
    """The 2^16 scan is expensive; audits see the same patterns repeatedly."""
    return frozenset(asn_language(pattern))


@dataclass
class Leak:
    source: str
    line_number: int
    kind: str  # "asn" | "string" | "ip"
    value: str
    line_text: str


def _asn_pattern(asn: int):
    # Avoid matching inside dotted quads and subinterface numbers.
    return re.compile(r"(?<![\d./:])" + str(asn) + r"(?![\d./:])")


def _combined(values, prefix: str, suffix: str):
    """One alternation regex over many literals (single pass per line)."""
    ordered = sorted(values, key=len, reverse=True)
    if not ordered:
        return None
    return re.compile(
        prefix + "(" + "|".join(re.escape(v) for v in ordered) + ")" + suffix
    )


def scan_for_leaks(
    configs: Dict[str, str],
    seen_asns: Iterable[int] = (),
    hashed_tokens: Iterable[str] = (),
    public_ips: Iterable[int] = (),
) -> List[Leak]:
    """Grep anonymized configs for recorded privileged values.

    Each value family is compiled into a single alternation so the scan is
    one regex pass per line regardless of how many values were recorded.
    """
    asn_re = _combined(
        [str(a) for a in set(seen_asns)], r"(?<![\d./:])", r"(?![\d./:])"
    )
    token_re = _combined(
        [t for t in set(hashed_tokens) if len(t) >= 3], r"\b", r"\b"
    )
    ip_re = _combined([int_to_ip(ip) for ip in set(public_ips)], r"\b", r"\b")
    scanners = [
        (kind, compiled)
        for kind, compiled in (("asn", asn_re), ("string", token_re), ("ip", ip_re))
        if compiled is not None
    ]
    leaks: List[Leak] = []
    for source, text in sorted(configs.items()):
        for line_number, line in enumerate(text.splitlines(), start=1):
            for kind, compiled in scanners:
                for match in compiled.finditer(line):
                    leaks.append(Leak(source, line_number, kind, match.group(1), line))
    return leaks


def structured_asn_audit(
    configs: Dict[str, str], original_public_asns: Iterable[int]
) -> List[Leak]:
    """Precise audit: parse ASN-carrying fields of anonymized configs.

    Reports a leak whenever a field that is *known* to hold an ASN (router
    bgp, remote-as, confederation, community halves, as-path regexps)
    still contains one of the original public ASNs.
    """
    originals: Set[int] = {a for a in original_public_asns if is_public_asn(a)}
    leaks: List[Leak] = []

    def check(source: str, kind: str, value: Optional[int], context: str) -> None:
        if value is not None and value in originals:
            leaks.append(Leak(source, 0, kind, str(value), context))

    for source, text in sorted(configs.items()):
        parsed = parse_config(text)
        if parsed.bgp is not None:
            check(source, "asn", parsed.bgp.asn, "router bgp")
            check(source, "asn", parsed.bgp.confederation_id, "confederation id")
            for peer_asn in parsed.bgp.confederation_peers:
                check(source, "asn", peer_asn, "confederation peers")
            for neighbor in parsed.bgp.neighbors.values():
                check(source, "asn", neighbor.remote_as, "remote-as")
        for clause in parsed.route_maps:
            for action in clause.sets:
                for token in action.split():
                    left, sep, right = token.partition(":")
                    if sep and left.isdigit() and right.isdigit():
                        check(source, "asn", int(left), "set community")
        for entry in parsed.aspath_acls:
            try:
                language = _cached_language(entry.regex)
            except Exception:
                continue
            for asn in originals:
                if asn in language:
                    leaks.append(
                        Leak(source, 0, "asn", str(asn), "as-path regexp accepts it")
                    )
        for entry in parsed.community_lists:
            for token in re.findall(r"(\d+):\d+", entry.body):
                check(source, "asn", int(token), "community-list")
    return leaks


#: ASN rules eligible for the iterative-closure experiment.
_CLOSABLE_RULES = (
    "R10", "R11", "R12", "R13", "R14", "R15", "R16",
    "R17", "R18", "R19", "R20", "R21",
)


@dataclass
class ClosureIteration:
    iteration: int
    enabled_rules: Tuple[str, ...]
    leaks_found: int
    rules_added: Tuple[str, ...]


def iterative_closure(
    configs: Dict[str, str],
    salt: bytes,
    initial_rules: Sequence[str] = ("R10",),
    max_iterations: int = 8,
) -> List[ClosureIteration]:
    """Mechanize the Section 6.1 loop.

    Starts with only *initial_rules* of the 12 ASN rules enabled, then
    repeatedly: anonymize, scan for ASN leaks, and enable every disabled
    rule whose pattern matches a leaked line (the automated stand-in for
    the human operator adding rules).  Returns the per-iteration history;
    the last entry has ``leaks_found == 0`` if the loop closed.
    """
    enabled: Set[str] = set(initial_rules)
    history: List[ClosureIteration] = []

    # What should be anonymized: every public ASN the full rule set sees.
    # Computed once; each iteration audits against this fixed target.
    full = Anonymizer(AnonymizerConfig(salt=salt))
    full.anonymize_network(dict(configs))
    target_asns = set(full.report.seen_asns)

    for iteration in range(1, max_iterations + 1):
        disabled = {r for r in _CLOSABLE_RULES if r not in enabled}
        config = AnonymizerConfig(salt=salt, disabled_rules=frozenset(disabled))
        anonymizer = Anonymizer(config)
        result = anonymizer.anonymize_network(dict(configs))
        leaks = structured_asn_audit(result.configs, target_asns)
        added: Set[str] = set()
        if leaks:
            # The "operator": find disabled rules whose pattern fires on the
            # leaked context lines of the original configs.
            leak_values = {leak.value for leak in leaks}
            # The operator looks at any original line mentioning a leaked
            # value (word-boundary match: communities like 701:7100 count).
            candidate_lines = [
                line
                for text in configs.values()
                for line in text.splitlines()
                if any(
                    re.search(r"(?<!\d)" + re.escape(v) + r"(?!\d)", line)
                    for v in leak_values
                )
            ]
            probe = Anonymizer(AnonymizerConfig(salt=salt))
            for rule in probe.rules:
                if rule.rule_id not in disabled:
                    continue
                for line_text in candidate_lines:
                    line = SegmentedLine(line_text)
                    ctx = probe._make_context("probe")
                    if rule.apply(line, ctx):
                        added.add(rule.rule_id)
                        break
        history.append(
            ClosureIteration(
                iteration=iteration,
                enabled_rules=tuple(sorted(enabled)),
                leaks_found=len(leaks),
                rules_added=tuple(sorted(added)),
            )
        )
        if not leaks:
            break
        if not added:
            # No matching rule exists: genuine gap, surface it.
            break
        enabled.update(added)
    return history
