"""Simulated external probing for the Section 6.2 fingerprint attack.

The paper sketches the attack but defers its feasibility: "Conceivably
this could be done by pinging every consecutive address in the address
blocks announced by the candidate network in BGP, and using heuristics
such as most subnets have hosts clustered at the lower end of the subnet's
address range to guess where subnet boundaries must lie."

This module mechanizes exactly that pipeline against generated networks:

1. :func:`simulate_responses` — ground truth to ICMP world: which addresses
   of the announced blocks answer probes (hosts cluster at the low end of
   each LAN, infrastructure /30s answer on both sides, a loss rate models
   filtering).
2. :func:`estimate_subnets` — the attacker's heuristic: cluster responding
   addresses by gaps and round cluster spans to power-of-two subnets.
3. :func:`probed_fingerprint` — the estimated subnet-size histogram.
4. :func:`noisy_reidentification` — nearest-neighbor matching of probed
   fingerprints against the config-derived candidate database, measuring
   how much measurement noise the attack tolerates.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.attacks.fingerprint import Fingerprint, fingerprint_distance
from repro.iosgen.generate import GeneratedNetwork
from repro.netutil import trailing_zero_bits


def simulate_responses(
    network: GeneratedNetwork,
    seed: int = 0,
    host_density: float = 0.4,
    loss_rate: float = 0.1,
) -> Set[int]:
    """Addresses of *network* that answer external probes.

    LAN subnets get a run of hosts clustered at the low end (the heuristic
    the paper proposes relies on this real-world regularity); p2p subnets
    answer on both of their two usable addresses; loopbacks answer.
    ``loss_rate`` silently drops responders (rate-limiting / filtering).
    """
    rng = random.Random(("probe", network.name, seed).__repr__())
    responders: Set[int] = set()
    for record in network.plan.subnets:
        if record.kind == "lan":
            size = 1 << (32 - record.prefix_len)
            population = max(1, int((size - 2) * host_density * rng.uniform(0.5, 1.0)))
            for offset in range(1, min(population + 1, size - 1)):
                responders.add(record.address + offset)
        elif record.kind in ("p2p", "peer"):
            responders.add(record.address + 1)
            responders.add(record.address + 2)
        elif record.kind == "loopback":
            responders.add(record.address)
    return {a for a in responders if rng.random() >= loss_rate}


def estimate_subnets(
    responders: Iterable[int], min_gap: int = 8
) -> List[Tuple[int, int]]:
    """The attacker's boundary-guessing heuristic.

    Consecutive responding addresses separated by less than *min_gap* are
    taken to share a subnet; each cluster's span is rounded up to the
    smallest power-of-two block aligned at the cluster's base.  Returns
    (base, prefix_len) guesses.
    """
    ordered = sorted(set(responders))
    if not ordered:
        return []
    clusters: List[List[int]] = [[ordered[0]]]
    for address in ordered[1:]:
        if address - clusters[-1][-1] < min_gap:
            clusters[-1].append(address)
        else:
            clusters.append([address])
    estimates: List[Tuple[int, int]] = []
    for cluster in clusters:
        low, high = cluster[0], cluster[-1]
        if low == high and trailing_zero_bits(low) == 0:
            # Lone responder on an odd address: /32 (a loopback) or a tiny
            # subnet; guess /32.
            estimates.append((low, 32))
            continue
        # Hosts cluster at the low end: the subnet base is just below the
        # first responder.  Round the span up to a power-of-two block.
        base = low - 1
        span = high - base + 2  # include network + broadcast slots
        prefix_len = 32
        while (1 << (32 - prefix_len)) < span and prefix_len > 0:
            prefix_len -= 1
        aligned_base = base & ~((1 << (32 - prefix_len)) - 1) & 0xFFFFFFFF
        estimates.append((aligned_base, prefix_len))
    return estimates


def probed_fingerprint(
    network: GeneratedNetwork, seed: int = 0, loss_rate: float = 0.1
) -> Fingerprint:
    """End-to-end: simulate probing and build the estimated histogram."""
    responders = simulate_responses(network, seed=seed, loss_rate=loss_rate)
    histogram: Counter = Counter()
    for _base, prefix_len in estimate_subnets(responders):
        histogram[prefix_len] += 1
    return tuple(sorted(histogram.items()))


def noisy_reidentification(
    candidates: Dict[str, Fingerprint],
    probed: Dict[str, Fingerprint],
) -> Tuple[int, int]:
    """Nearest-neighbor matching of noisy probed fingerprints against the
    exact config-derived database.  Returns (correct, attempted)."""
    correct = 0
    for name, fingerprint in probed.items():
        best = min(
            candidates,
            key=lambda cand: (fingerprint_distance(candidates[cand], fingerprint), cand),
        )
        if best == name:
            correct += 1
    return correct, len(probed)
