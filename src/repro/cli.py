"""Command-line interface: ``repro-anonymize``.

Anonymize one or more router configuration files (or a whole directory of
them as one network) with shared mapping state, print a report, and
optionally run the leak scanner over the output.

Two service subcommands ride on the same entry point:

* ``repro-anonymize serve`` — run the long-lived anonymization daemon.
* ``repro-anonymize submit`` — anonymize files through a running daemon.

Exit codes are shared with the service layer and documented in
:mod:`repro.core.status` (distinct, so CI and scripts can detect the
*kind* of dirty run).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.attacks.textual import scan_for_leaks
from repro.core import Anonymizer, AnonymizerConfig
from repro.core.rules import rule_inventory
from repro.core.status import (
    EXIT_BAD_FAULT_PLAN,
    EXIT_LEAKS,
    EXIT_LEAKS_AND_QUARANTINE,
    EXIT_NO_INPUT,
    EXIT_OK,
    EXIT_QUARANTINE,
    EXIT_STATE_ERROR,
    EXIT_UNKNOWN_PLUGIN,
    exit_code_for,
)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-anonymize",
        description="Structure-preserving anonymization of router configuration data "
        "(Maltz et al., IMC 2004).",
    )
    parser.add_argument("paths", nargs="*", help="config files or directories")
    parser.add_argument(
        "--salt",
        default=None,
        help="owner secret (required to anonymize; keep it private!)",
    )
    parser.add_argument(
        "--out-dir", default=None, help="directory for anonymized outputs"
    )
    parser.add_argument(
        "--suffix", default=".anon", help="suffix for outputs next to inputs"
    )
    parser.add_argument(
        "--hash-length", type=int, default=16, help="hex chars of SHA1 kept"
    )
    parser.add_argument(
        "--regex-style",
        choices=("alternation", "mindfa"),
        default="alternation",
        help="rewrite style for ASN regexps",
    )
    parser.add_argument(
        "--no-subnet-shaping", action="store_true", help="disable subnet shaping"
    )
    parser.add_argument(
        "--no-class-preserving", action="store_true", help="disable class preservation"
    )
    parser.add_argument(
        "--keep-comments",
        action="store_true",
        help="do NOT strip comments (debugging only; comments leak identity)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel rewrite workers (default 1; >1 implies the "
        "mapping-freeze phase, output is byte-identical for any N)",
    )
    parser.add_argument(
        "--snapshot-transport",
        choices=("auto", "fork", "shm", "pickle"),
        default="auto",
        help="how the frozen mapping snapshot reaches parallel workers: "
        "fork (copy-on-write, zero serialization), shm (pickled once "
        "into shared memory), pickle (legacy per-pool copy), or auto "
        "(fork where available, else shm); output is byte-identical "
        "across all of them",
    )
    parser.add_argument(
        "--chunk-files",
        type=int,
        default=0,
        metavar="K",
        help="files per parallel worker task (0 = size automatically; "
        "chunking amortizes task overhead over small files)",
    )
    parser.add_argument(
        "--two-pass",
        dest="two_pass",
        action="store_true",
        default=None,
        help="freeze all mapping state in a corpus-wide first pass "
        "(guarantees subnet shaping and file-order independence)",
    )
    parser.add_argument(
        "--no-two-pass",
        dest="two_pass",
        action="store_false",
        help="force single-pass anonymization even with --jobs 1 "
        "(best-effort subnet shaping; default)",
    )
    parser.add_argument(
        "--state-file",
        default=None,
        help="mapping-state JSON: loaded if it exists, saved after the run "
        "(keeps later uploads consistent; protect it like the salt)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip files the run manifest records as already written with "
        "an intact digest (implies --two-pass so the resumed output is "
        "byte-identical to a clean run); requires --out-dir or --manifest",
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="FILE",
        help="run-manifest JSON path (default: {} inside --out-dir)".format(
            "the .repro-run-manifest.json file"
        ),
    )
    parser.add_argument(
        "--scan-leaks",
        action="store_true",
        help="run the Section 6.1 leak scanner over the output",
    )
    parser.add_argument(
        "--report", action="store_true", help="print the anonymization report"
    )
    parser.add_argument(
        "--report-json",
        default=None,
        metavar="FILE",
        help="write the anonymization report (counters, rule hits, flags) "
        "as JSON",
    )
    parser.add_argument(
        "--export-model",
        default=None,
        metavar="FILE",
        help="also write a vendor-neutral JSON model of the anonymized "
        "network (the higher-level representation of the paper's "
        "footnote 1)",
    )
    parser.add_argument(
        "--plugins",
        default=None,
        metavar="FAMILIES",
        help="comma-separated recognizer plugin families to enable "
        "(default: every discovered family minus $REPRO_PLUGINS_DISABLE; "
        "out-of-tree plugins are discovered via $REPRO_PLUGINS paths)",
    )
    parser.add_argument(
        "--no-plugins",
        action="store_true",
        help="run with the builtin 28 rules only (no recognizer plugins)",
    )
    parser.add_argument(
        "--inventory",
        action="store_true",
        help="print the 28-rule inventory and exit",
    )
    return parser


def _read_config_text(path: Path):
    """Read one candidate config file defensively.

    Returns its text, or ``None`` (with a warning on stderr) for files
    that cannot be part of a config corpus: unreadable ones and binary
    blobs.  Bytes that are not valid UTF-8 decode with U+FFFD replacement
    instead of aborting the whole corpus run with a
    ``UnicodeDecodeError``.
    """
    try:
        data = path.read_bytes()
    except OSError as exc:
        print(
            "warning: skipping {} (unreadable: {})".format(
                path, type(exc).__name__
            ),
            file=sys.stderr,
        )
        return None
    if b"\x00" in data[:8192]:
        print("warning: skipping {} (binary file)".format(path), file=sys.stderr)
        return None
    return data.decode("utf-8", errors="replace")


def _collect_files(paths) -> dict:
    configs = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in sorted(path.iterdir()):
                if child.is_file():
                    text = _read_config_text(child)
                    if text is not None:
                        configs[str(child)] = text
        elif path.is_file():
            text = _read_config_text(path)
            if text is not None:
                configs[str(path)] = text
        else:
            raise FileNotFoundError(raw)
    return configs


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in ("serve", "submit"):
        from repro.service.cli import serve_main, submit_main

        return (serve_main if argv[0] == "serve" else submit_main)(argv[1:])
    parser = build_arg_parser()
    args = parser.parse_args(argv)

    if args.inventory:
        extra_rules = []
        if not args.no_plugins:
            from repro.plugins import UnknownPluginError, resolve_active_plugins

            requested = None
            if args.plugins is not None:
                requested = tuple(
                    name.strip()
                    for name in args.plugins.split(",")
                    if name.strip()
                )
            try:
                active = resolve_active_plugins(requested)
            except UnknownPluginError as exc:
                print("error: {}".format(exc), file=sys.stderr)
                return EXIT_UNKNOWN_PLUGIN
            for plugin in active:
                extra_rules.extend(plugin.build_rules())
        print(rule_inventory(extra_rules=extra_rules))
        return 0
    if not args.paths:
        parser.error("no input files given (or use --inventory)")
    if args.salt is None:
        parser.error("--salt is required when anonymizing")

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.chunk_files < 0:
        parser.error("--chunk-files must be >= 0")
    # --jobs > 1 requires the freeze phase (it is what makes parallel
    # output order-independent); an explicit --no-two-pass contradicts it.
    if args.jobs > 1 and args.two_pass is False:
        parser.error("--no-two-pass cannot be combined with --jobs > 1")
    # --resume also requires the freeze: skipped files must have been
    # anonymized under the same corpus-wide frozen mappings the rerun
    # uses, or the resumed corpus would not be byte-identical to a clean
    # run.
    if args.resume and args.two_pass is False:
        parser.error("--no-two-pass cannot be combined with --resume")
    if args.resume and not (args.out_dir or args.manifest):
        parser.error("--resume requires --out-dir (or an explicit --manifest)")
    two_pass = (
        args.two_pass
        if args.two_pass is not None
        else (args.jobs > 1 or args.resume)
    )

    if args.no_plugins and args.plugins:
        parser.error("--no-plugins cannot be combined with --plugins")
    plugins = None
    if args.no_plugins:
        plugins = ()
    elif args.plugins is not None:
        plugins = tuple(
            name.strip() for name in args.plugins.split(",") if name.strip()
        )

    config = AnonymizerConfig(
        salt=args.salt.encode("utf-8"),
        hash_length=args.hash_length,
        regex_style=args.regex_style,
        subnet_shaping=not args.no_subnet_shaping,
        class_preserving=not args.no_class_preserving,
        strip_comments=not args.keep_comments,
        jobs=args.jobs,
        two_pass=two_pass,
        snapshot_transport=args.snapshot_transport,
        chunk_files=args.chunk_files,
        plugins=plugins,
    )
    from repro.core.faults import FaultPlanError
    from repro.plugins import UnknownPluginError

    try:
        anonymizer = Anonymizer(config)
    except FaultPlanError as exc:
        print(
            "error: invalid REPRO_FAULT_PLAN: {}".format(exc),
            file=sys.stderr,
        )
        return EXIT_BAD_FAULT_PLAN
    except UnknownPluginError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return EXIT_UNKNOWN_PLUGIN
    if anonymizer.fault_plan is not None:
        print(
            "WARNING: fault injection active ({}); never publish this "
            "run's output".format(anonymizer.fault_plan.describe()),
            file=sys.stderr,
        )
    if args.state_file and Path(args.state_file).exists():
        from repro.core.state import StateError, load_state

        try:
            load_state(anonymizer, args.state_file)
        except StateError as exc:
            print("error: {}".format(exc), file=sys.stderr)
            return EXIT_STATE_ERROR
        print("loaded mapping state from {}".format(args.state_file))
    configs = _collect_files(args.paths)
    if not configs:
        print("error: no readable config files found", file=sys.stderr)
        return EXIT_NO_INPUT
    if two_pass:
        anonymizer.freeze_mappings(configs)

    from repro.core.runner import (
        MANIFEST_NAME,
        RunnerError,
        resolve_out_paths,
        run_anonymization,
    )

    try:
        out_paths = resolve_out_paths(configs, args.out_dir, args.suffix)
    except RunnerError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return EXIT_STATE_ERROR

    def out_path_for(name: str) -> Path:
        return out_paths[name]

    manifest_path = args.manifest
    if manifest_path is None and args.out_dir:
        manifest_path = str(Path(args.out_dir) / MANIFEST_NAME)

    try:
        result = run_anonymization(
            anonymizer,
            configs,
            out_path_for,
            jobs=args.jobs,
            resume=args.resume,
            manifest_path=manifest_path,
        )
    except RunnerError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return EXIT_STATE_ERROR

    for name in sorted(result.outcomes):
        outcome = result.outcomes[name]
        if outcome.status == "written":
            print("wrote {}".format(outcome.out_path))
        elif outcome.status == "skipped":
            print("skipped {} (already complete)".format(outcome.out_path))
        elif outcome.status == "quarantined":
            print(
                "quarantined {} ({}): output withheld".format(
                    name, outcome.detail
                ),
                file=sys.stderr,
            )
        else:  # write-failed
            print(
                "write failed for {} ({}): output withheld".format(
                    name, outcome.detail
                ),
                file=sys.stderr,
            )
    outputs = result.outputs

    if args.state_file:
        from repro.core.state import save_state

        save_state(anonymizer, args.state_file)
        print("saved mapping state to {}".format(args.state_file))

    if args.report:
        print()
        print(anonymizer.report.summary())

    if args.report_json:
        import json

        Path(args.report_json).write_text(
            json.dumps(anonymizer.report.to_dict(), indent=2, sort_keys=True)
        )
        print("wrote report to {}".format(args.report_json))

    if args.export_model:
        from repro.configmodel import ParsedNetwork
        from repro.configmodel.export import network_to_json

        model = network_to_json(ParsedNetwork.from_configs(outputs))
        Path(args.export_model).write_text(model)
        print("wrote model to {}".format(args.export_model))

    leaks_found = False
    if args.scan_leaks:
        leaks = scan_for_leaks(
            outputs,
            seen_asns=anonymizer.report.seen_asns,
            hashed_tokens=anonymizer.hasher.hashed_inputs.keys(),
            public_ips=anonymizer.report.seen_public_ips,
        )
        print()
        if leaks:
            leaks_found = True
            print("{} lines highlighted for human review:".format(len(leaks)))
            for leak in leaks[:50]:
                print(
                    "  {}:{} [{}={}] {}".format(
                        leak.source, leak.line_number, leak.kind, leak.value,
                        leak.line_text.strip(),
                    )
                )
        else:
            print("leak scan: no highlighted lines")

    return exit_code_for(leaks=leaks_found, dirty=result.dirty)


if __name__ == "__main__":
    sys.exit(main())
