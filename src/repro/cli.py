"""Command-line interface: ``repro-anonymize``.

Anonymize one or more router configuration files (or a whole directory of
them as one network) with shared mapping state, print a report, and
optionally run the leak scanner over the output.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.attacks.textual import scan_for_leaks
from repro.core import Anonymizer, AnonymizerConfig
from repro.core.rules import rule_inventory


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-anonymize",
        description="Structure-preserving anonymization of router configuration data "
        "(Maltz et al., IMC 2004).",
    )
    parser.add_argument("paths", nargs="*", help="config files or directories")
    parser.add_argument(
        "--salt",
        default=None,
        help="owner secret (required to anonymize; keep it private!)",
    )
    parser.add_argument(
        "--out-dir", default=None, help="directory for anonymized outputs"
    )
    parser.add_argument(
        "--suffix", default=".anon", help="suffix for outputs next to inputs"
    )
    parser.add_argument(
        "--hash-length", type=int, default=16, help="hex chars of SHA1 kept"
    )
    parser.add_argument(
        "--regex-style",
        choices=("alternation", "mindfa"),
        default="alternation",
        help="rewrite style for ASN regexps",
    )
    parser.add_argument(
        "--no-subnet-shaping", action="store_true", help="disable subnet shaping"
    )
    parser.add_argument(
        "--no-class-preserving", action="store_true", help="disable class preservation"
    )
    parser.add_argument(
        "--keep-comments",
        action="store_true",
        help="do NOT strip comments (debugging only; comments leak identity)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel rewrite workers (default 1; >1 implies the "
        "mapping-freeze phase, output is byte-identical for any N)",
    )
    parser.add_argument(
        "--two-pass",
        dest="two_pass",
        action="store_true",
        default=None,
        help="freeze all mapping state in a corpus-wide first pass "
        "(guarantees subnet shaping and file-order independence)",
    )
    parser.add_argument(
        "--no-two-pass",
        dest="two_pass",
        action="store_false",
        help="force single-pass anonymization even with --jobs 1 "
        "(best-effort subnet shaping; default)",
    )
    parser.add_argument(
        "--state-file",
        default=None,
        help="mapping-state JSON: loaded if it exists, saved after the run "
        "(keeps later uploads consistent; protect it like the salt)",
    )
    parser.add_argument(
        "--scan-leaks",
        action="store_true",
        help="run the Section 6.1 leak scanner over the output",
    )
    parser.add_argument(
        "--report", action="store_true", help="print the anonymization report"
    )
    parser.add_argument(
        "--report-json",
        default=None,
        metavar="FILE",
        help="write the anonymization report (counters, rule hits, flags) "
        "as JSON",
    )
    parser.add_argument(
        "--export-model",
        default=None,
        metavar="FILE",
        help="also write a vendor-neutral JSON model of the anonymized "
        "network (the higher-level representation of the paper's "
        "footnote 1)",
    )
    parser.add_argument(
        "--inventory",
        action="store_true",
        help="print the 28-rule inventory and exit",
    )
    return parser


def _collect_files(paths) -> dict:
    configs = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in sorted(path.iterdir()):
                if child.is_file():
                    configs[str(child)] = child.read_text()
        elif path.is_file():
            configs[str(path)] = path.read_text()
        else:
            raise FileNotFoundError(raw)
    return configs


def main(argv=None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)

    if args.inventory:
        print(rule_inventory())
        return 0
    if not args.paths:
        parser.error("no input files given (or use --inventory)")
    if args.salt is None:
        parser.error("--salt is required when anonymizing")

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    # --jobs > 1 requires the freeze phase (it is what makes parallel
    # output order-independent); an explicit --no-two-pass contradicts it.
    if args.jobs > 1 and args.two_pass is False:
        parser.error("--no-two-pass cannot be combined with --jobs > 1")
    two_pass = args.two_pass if args.two_pass is not None else args.jobs > 1

    config = AnonymizerConfig(
        salt=args.salt.encode("utf-8"),
        hash_length=args.hash_length,
        regex_style=args.regex_style,
        subnet_shaping=not args.no_subnet_shaping,
        class_preserving=not args.no_class_preserving,
        strip_comments=not args.keep_comments,
        jobs=args.jobs,
        two_pass=two_pass,
    )
    anonymizer = Anonymizer(config)
    if args.state_file and Path(args.state_file).exists():
        from repro.core.state import load_state

        load_state(anonymizer, args.state_file)
        print("loaded mapping state from {}".format(args.state_file))
    configs = _collect_files(args.paths)
    if two_pass:
        anonymizer.freeze_mappings(configs)
    from repro.core.parallel import anonymize_files

    outputs = anonymize_files(anonymizer, configs, jobs=args.jobs)

    for name, text in outputs.items():
        source = Path(name)
        if args.out_dir:
            out_path = Path(args.out_dir) / (source.name + args.suffix)
            out_path.parent.mkdir(parents=True, exist_ok=True)
        else:
            out_path = source.with_name(source.name + args.suffix)
        out_path.write_text(text)
        print("wrote {}".format(out_path))

    if args.state_file:
        from repro.core.state import save_state

        save_state(anonymizer, args.state_file)
        print("saved mapping state to {}".format(args.state_file))

    if args.report:
        print()
        print(anonymizer.report.summary())

    if args.report_json:
        import json

        Path(args.report_json).write_text(
            json.dumps(anonymizer.report.to_dict(), indent=2, sort_keys=True)
        )
        print("wrote report to {}".format(args.report_json))

    if args.export_model:
        from repro.configmodel import ParsedNetwork
        from repro.configmodel.export import network_to_json

        model = network_to_json(ParsedNetwork.from_configs(outputs))
        Path(args.export_model).write_text(model)
        print("wrote model to {}".format(args.export_model))

    if args.scan_leaks:
        leaks = scan_for_leaks(
            outputs,
            seen_asns=anonymizer.report.seen_asns,
            hashed_tokens=anonymizer.hasher.hashed_inputs.keys(),
            public_ips=anonymizer.report.seen_public_ips,
        )
        print()
        if leaks:
            print("{} lines highlighted for human review:".format(len(leaks)))
            for leak in leaks[:50]:
                print(
                    "  {}:{} [{}={}] {}".format(
                        leak.source, leak.line_number, leak.kind, leak.value,
                        leak.line_text.strip(),
                    )
                )
        else:
            print("leak scan: no highlighted lines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
