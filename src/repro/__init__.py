"""repro — Structure-Preserving Anonymization of Router Configuration Data.

A full reproduction of Maltz, Zhan, Xie, Zhang, Hjálmtýsson, Greenberg,
and Rexford, "Structure Preserving Anonymization of Router Configuration
Data", IMC 2004.

Subpackages
-----------
``repro.core``
    The anonymization engine (the paper's contribution): salted-SHA1 string
    hashing against a pass-list, comment/banner stripping, the
    prefix-preserving IP trie with class/special/subnet extensions, the
    ASN and community permutations, and regexp language rewriting — all
    orchestrated by a 28-rule pipeline.
``repro.automata``
    Regex -> NFA -> DFA -> minimum DFA -> regex machinery used for policy
    regexp anonymization.
``repro.iosgen``
    Synthetic network and Cisco-IOS-style config generator standing in for
    the paper's proprietary 7655-router carrier corpus.
``repro.configmodel``
    IOS config parser and network model.
``repro.validation``
    The paper's two pre/post validation suites.
``repro.attacks``
    Leak scanning, iterative closure, and fingerprinting analyses.

Quickstart
----------
>>> from repro.core import Anonymizer
>>> anonymizer = Anonymizer(salt=b"owner-secret")
>>> print(anonymizer.anonymize_text("router bgp 701\\n"))
router bgp 3929
<BLANKLINE>
"""

__version__ = "1.0.0"

from repro.core import Anonymizer, AnonymizerConfig

__all__ = ["Anonymizer", "AnonymizerConfig", "__version__"]
