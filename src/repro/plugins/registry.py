"""Plugin discovery and activation.

Two discovery sources, composed in deterministic order:

1. **Builtin modules** — every module directly under
   :mod:`repro.plugins.builtin` that exports a module-level ``PLUGIN``
   object, scanned alphabetically.
2. **Out-of-tree files** — the ``REPRO_PLUGINS`` environment variable,
   an ``os.pathsep``-separated list of plugin *file paths*, each loaded
   with :mod:`importlib` and required to export ``PLUGIN`` too.

Registration is fail-soft: a module that raises on import, lacks a
``PLUGIN``, or exports a malformed one is *skipped* with a
:class:`PluginRegistrationWarning` naming the culprit — a broken plugin
degrades coverage, it never crashes the engine.  Activation by unknown
family name, in contrast, is a hard :class:`UnknownPluginError`: the
caller explicitly asked for coverage that does not exist, and silently
anonymizing without it would be a policy downgrade.
"""

from __future__ import annotations

import importlib
import importlib.util
import os
import pkgutil
import warnings
from typing import Dict, List, Optional, Sequence

from repro.core.report import register_rule_family_prefix
from repro.plugins.base import RecognizerPlugin

__all__ = [
    "ENV_PLUGIN_DISABLE",
    "ENV_PLUGIN_PATHS",
    "PluginRegistrationWarning",
    "UnknownPluginError",
    "discover_plugins",
    "resolve_active_plugins",
]

#: Out-of-tree plugin files (``os.pathsep``-separated paths).
ENV_PLUGIN_PATHS = "REPRO_PLUGINS"
#: Families excluded from the ``plugins=None`` default (comma-separated).
#: Ignored when an explicit family list is configured.
ENV_PLUGIN_DISABLE = "REPRO_PLUGINS_DISABLE"


class PluginRegistrationWarning(UserWarning):
    """A plugin failed to register and was skipped."""


class UnknownPluginError(ValueError):
    """An explicitly requested plugin family does not exist."""


#: Discovery memo keyed by the REPRO_PLUGINS value in effect: builtin
#: scanning and file loading are pure given that value, and engine
#: construction is on the service hot path (one engine per session).
_discovered: Dict[str, Dict[str, RecognizerPlugin]] = {}


def _register(plugin: RecognizerPlugin, origin: str, plugins: Dict) -> None:
    family = getattr(plugin, "family", "")
    if not isinstance(family, str) or not family:
        raise ValueError("plugin {!r} declares no family name".format(origin))
    if family in plugins:
        raise ValueError(
            "family {!r} already registered (duplicate from {!r})".format(
                family, origin
            )
        )
    # Probe the rule list now so a plugin that raises lazily is caught at
    # registration (and skipped), not mid-corpus.
    rules = plugin.build_rules()
    for rule in rules:
        if not rule.rule_id:
            raise ValueError(
                "plugin {!r} produced a rule without an id".format(origin)
            )
    prefix = getattr(plugin, "rule_prefix", "")
    if prefix:
        register_rule_family_prefix(prefix, family)
    plugins[family] = plugin


def _register_source(origin: str, loader, plugins: Dict) -> None:
    try:
        module = loader()
        plugin = getattr(module, "PLUGIN", None)
        if plugin is None:
            raise ValueError("module exports no PLUGIN object")
        _register(plugin, origin, plugins)
    except Exception as exc:
        warnings.warn(
            "recognizer plugin {!r} skipped: {}: {}".format(
                origin, type(exc).__name__, exc
            ),
            PluginRegistrationWarning,
            stacklevel=3,
        )


def _load_file(path: str):
    name = "repro_plugin_" + os.path.splitext(os.path.basename(path))[0]
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise ImportError("cannot load plugin file {!r}".format(path))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def discover_plugins(refresh: bool = False) -> Dict[str, RecognizerPlugin]:
    """All registrable plugins by family name (builtin + out-of-tree)."""
    paths_value = os.environ.get(ENV_PLUGIN_PATHS, "")
    if not refresh and paths_value in _discovered:
        return dict(_discovered[paths_value])
    plugins: Dict[str, RecognizerPlugin] = {}
    import repro.plugins.builtin as builtin_package

    modules = sorted(
        info.name for info in pkgutil.iter_modules(builtin_package.__path__)
    )
    for name in modules:
        dotted = "repro.plugins.builtin." + name
        _register_source(
            dotted,
            lambda dotted=dotted: importlib.import_module(dotted),
            plugins,
        )
    for path in paths_value.split(os.pathsep):
        path = path.strip()
        if path:
            _register_source(path, lambda path=path: _load_file(path), plugins)
    _discovered[paths_value] = dict(plugins)
    return plugins


def resolve_active_plugins(
    selection: Optional[Sequence[str]] = None,
) -> List[RecognizerPlugin]:
    """The active plugin list for a run, sorted by family name.

    ``selection=None`` activates every discovered family except those in
    ``REPRO_PLUGINS_DISABLE``; an explicit sequence activates exactly the
    named families (and raises :class:`UnknownPluginError` for any name
    that did not register).
    """
    available = discover_plugins()
    if selection is None:
        disabled = {
            name.strip()
            for name in os.environ.get(ENV_PLUGIN_DISABLE, "").split(",")
            if name.strip()
        }
        names = [name for name in sorted(available) if name not in disabled]
    else:
        unknown = sorted(set(selection) - set(available))
        if unknown:
            raise UnknownPluginError(
                "unknown plugin famil{}: {}; available: {}".format(
                    "y" if len(unknown) == 1 else "ies",
                    ", ".join(unknown),
                    ", ".join(sorted(available)) or "(none)",
                )
            )
        names = sorted(set(selection))
    return [available[name] for name in names]
