"""The recognizer plugin interface.

A plugin contributes one *rule family*: a set of
:class:`~repro.core.rulebase.Rule` records (with triggers, so the
compiled dispatch layer gates them exactly like the builtin 28), plus
optional hooks into the two pipeline stages that per-line rules cannot
reach — the multi-line pre-pass (opaque blobs spanning lines) and the
corpus-wide freeze scan (preloading an address family's trie before the
mapping state freezes).

Contracts every plugin must honor (enforced by ``tests/test_plugins.py``
and the dispatch property test):

* **Trigger/gate superset** — each rule's ``trigger`` must be a
  *necessary* condition of its pattern: whenever the rule's ``apply``
  rewrites anything on a line, ``compile_gate(trigger)`` must pass on
  that line's lowered text.  A rule whose trigger misses lines its
  pattern matches silently stops firing under the prefilter.
* **Fail closed** — a recognizer that detects *part* of a privileged
  structure (an unterminated certificate block, a truncated key) must
  replace it with a placeholder, never emit the partial original.
* **Frozen replacements** — mapped/hashed output pieces are emitted
  frozen so later rules and the token pass never reinterpret them; any
  piece left live must be a substring of the original line.

Plugin rules run *before* the builtin rules (vendor-specific secret
formats get first crack, so the generic ``password|secret`` rule cannot
half-consume them), and block filters run after comment stripping,
before the per-line loop.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.rulebase import Rule


class FinalLine(str):
    """A line a block filter emits *fully anonymized*.

    The engine appends ``FinalLine`` instances to the output verbatim —
    no rule dispatch, no token pass — exactly like fail-closed
    placeholders.  Block filters use it for placeholder lines whose text
    (a salted digest) must survive the pipeline untouched.
    """

    __slots__ = ()


class RecognizerPlugin:
    """Base class for recognizer plugins.

    Subclasses set the class attributes and override whichever hooks
    their family needs; every hook has a no-op default so a pure
    line-rule plugin only implements :meth:`build_rules`.
    """

    #: Unique family name (the ``--plugins`` / config / metrics handle).
    family: str = ""
    #: Rule-id prefix this family's rules share (``V`` -> ``V1``, ...);
    #: registered with :func:`repro.core.report.register_rule_family_prefix`
    #: so report summaries and service metrics fold hits per family.
    rule_prefix: str = ""
    description: str = ""

    def build_rules(self) -> List[Rule]:
        """The family's line rules, in application order."""
        return []

    def passlist_words(self) -> tuple:
        """Extra pass-list words this family's dialect introduces.

        The engine unions them into a *copy* of the configured pass-list
        (the shared default is never mutated), so keywords like ``ipv6``
        survive the token pass only while the contributing family is
        active — with the family off, output is byte-identical to a
        pre-plugin run.  Words must be the *alphabetic runs* the R1
        segmenter produces (``ipv6`` is looked up as ``ipv``).
        """
        return ()

    def block_filter(self) -> Optional[object]:
        """A multi-line pre-pass, or ``None``.

        The returned object is called as ``filter(lines, ctx)`` per file,
        after comment stripping and before the per-line loop, and returns
        the replacement line list (which may contain :class:`FinalLine`
        instances).
        """
        return None

    def setup(self, anonymizer) -> None:
        """Attach per-engine state (e.g. an address-family map) to the
        :class:`~repro.core.engine.Anonymizer` under construction."""

    def freeze_scan(self, anonymizer, configs, stats) -> None:
        """Corpus-wide preload hook, called by
        :meth:`~repro.core.engine.Anonymizer.freeze_mappings` before the
        mapping state freezes.  ``stats`` is the run's
        :class:`~repro.core.engine.FreezeStats` to annotate."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<{} family={!r}>".format(type(self).__name__, self.family)
