"""Recognizer plugin subsystem.

``repro.core.rulebase`` defines the rule *record*; this package defines
how rule *families* beyond the paper's 28 reach the engine.  A plugin
bundles a named family of recognizers — line rules with triggers for
:class:`~repro.core.dispatch.CompiledDispatch`, optional multi-line block
filters, optional freeze-phase corpus scans — and the registry composes
the active set at :class:`~repro.core.engine.Anonymizer` construction,
before the dispatch tables are compiled and before any mapping state is
frozen.

Discovery (see :mod:`repro.plugins.registry`):

* every module under :mod:`repro.plugins.builtin` exporting a ``PLUGIN``
  object registers automatically;
* the ``REPRO_PLUGINS`` environment variable names additional plugin
  *files* (``os.pathsep``-separated paths) loaded out-of-tree;
* a plugin that raises during registration is skipped with a named
  :class:`PluginRegistrationWarning` — one broken plugin never takes the
  anonymizer down.

Activation: ``AnonymizerConfig.plugins`` (``None`` = all discovered
builtin families minus ``REPRO_PLUGINS_DISABLE``; an explicit sequence =
exactly those families).  The active family set is recorded in frozen
snapshots, exported state documents, and service journal headers, and a
state dir or resumed session frozen under a different plugin set refuses
to serve.
"""

from repro.plugins.base import FinalLine, RecognizerPlugin
from repro.plugins.registry import (
    ENV_PLUGIN_DISABLE,
    ENV_PLUGIN_PATHS,
    PluginRegistrationWarning,
    UnknownPluginError,
    discover_plugins,
    resolve_active_plugins,
)

__all__ = [
    "ENV_PLUGIN_DISABLE",
    "ENV_PLUGIN_PATHS",
    "FinalLine",
    "PluginRegistrationWarning",
    "RecognizerPlugin",
    "UnknownPluginError",
    "discover_plugins",
    "resolve_active_plugins",
]
