"""Arista EOS dialect pack (family ``eos``, rules E*).

EOS is IOS-shaped — most of the builtin 28 apply verbatim (CIDR
interface addresses ride R23, ``neighbor .. remote-as`` rides the ASN
rules, ``username`` rides R28) — so this family only adds the EOS-isms
the generic rules would mis-segment:

* **E1** — ``secret sha512 <blob>``: EOS's hashed-secret spelling.  Runs
  *before* the generic R26 (plugin rules precede builtin rules), which
  would otherwise consume ``secret sha512`` and hash the literal word
  ``sha512`` instead of the blob.
* **E2** — ``match as-range <lo>-<hi>`` route-map clauses: both ASNs are
  mapped through the shared permutation (order across the mapped pair is
  not preserved — the permutation is not monotone — so the line is
  flagged for review).
* **E3** — ``protocol https certificate <name> key <name>``: the eAPI
  certificate/key profile names are operator-chosen identifiers, hashed
  like any privileged name.

The matching synthetic corpus comes from
:func:`repro.iosgen.eos_render.render_eos_config` (``NetworkSpec.eos_fraction``).
"""

from __future__ import annotations

import re

from repro.core.rulebase import Rule
from repro.plugins.base import RecognizerPlugin

SECRET_SHA512_RE = re.compile(r"(\bsecret sha512 )(\S+)", re.IGNORECASE)
AS_RANGE_RE = re.compile(r"(\bmatch as-range )(\d{1,5})(-)(\d{1,5})", re.IGNORECASE)
API_CERT_RE = re.compile(
    r"(\bprotocol https certificate )(\S+)( key )(\S+)", re.IGNORECASE
)


def _apply_secret_sha512(line, ctx):
    def handler(match):
        return [(match.group(1), True), (ctx.hash_secret(match.group(2)), True)]

    return line.apply_rule(SECRET_SHA512_RE, handler)


def _apply_as_range(line, ctx):
    def handler(match):
        low = ctx.map_asn_text(match.group(2))
        high = ctx.map_asn_text(match.group(4))
        ctx.flag(
            "E2",
            "as-range endpoints mapped individually; the mapped pair is "
            "not order-preserving",
        )
        return [
            (match.group(1), True),
            (low, True),
            (match.group(3), True),
            (high, True),
        ]

    return line.apply_rule(AS_RANGE_RE, handler)


def _apply_api_cert(line, ctx):
    def handler(match):
        return [
            (match.group(1), True),
            (ctx.hash_secret(match.group(2)), True),
            (match.group(3), True),
            (ctx.hash_secret(match.group(4)), True),
        ]

    return line.apply_rule(API_CERT_RE, handler)


class EosPlugin(RecognizerPlugin):
    family = "eos"
    rule_prefix = "E"
    description = (
        "Arista EOS dialect: sha512 secrets, as-range clauses, eAPI "
        "certificate profiles."
    )

    def build_rules(self):
        return [
            Rule(
                "E1",
                "eos-sha512-secrets",
                "secret",
                "`... secret sha512 <blob>` (EOS username/enable secrets) "
                "hashes the blob and keeps the algorithm keyword.",
                _apply_secret_sha512,
                trigger="secret sha512",
            ),
            Rule(
                "E2",
                "eos-as-range",
                "asn",
                "`match as-range <lo>-<hi>` route-map clauses map both "
                "endpoint ASNs through the shared permutation.",
                _apply_as_range,
                trigger="as-range",
            ),
            Rule(
                "E3",
                "eos-api-certificates",
                "secret",
                "`protocol https certificate <cert> key <key>` eAPI "
                "profile names are hashed.",
                _apply_api_cert,
                trigger="protocol https certificate",
            ),
        ]

    def passlist_words(self):
        # EOS keywords the curated (IOS-era) pass-list never needed; all
        # verified absent from the existing synthetic corpora, so adding
        # them cannot perturb pre-registry output.
        return (
            "qsfp",
            "mstp",
            "sshkey",
            "eof",
            "https",
            "certificate",
            "api",
            "ssl",
            "inline",
        )


PLUGIN = EosPlugin()
