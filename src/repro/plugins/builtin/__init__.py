"""Builtin recognizer plugin families.

Every module in this package exporting a module-level ``PLUGIN`` object
registers automatically (see :mod:`repro.plugins.registry`).
"""
