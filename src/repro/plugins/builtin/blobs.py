"""Opaque credential blobs (family ``blobs``, rules B*).

Certificates, SSH public keys, and SNMPv3 user credentials are
privileged material the paper's per-line rules cannot express: PEM
certificates and IOS ``crypto pki`` chains span many lines, and a
half-recognized blob must *never* leak its remainder.  This family
contributes:

* **B1** — a multi-line block filter replacing complete PEM blocks
  (``-----BEGIN X-----`` .. ``-----END X-----``) and IOS certificate hex
  blobs (``certificate ...`` + hex lines + ``quit``) with one salted
  digest placeholder line.  An *unterminated* block fails closed: every
  remaining line is swallowed into a partial-blob placeholder and the
  file is flagged for review.
* **B2** — single-line SSH public keys (``ssh-rsa AAAA...``): the key
  material and the trailing ``user@host`` comment are hashed.
* **B3** — SNMPv3 users: ``snmp-server user`` names and ``auth``/
  ``priv`` passphrases are hashed, the algorithm keywords kept.
"""

from __future__ import annotations

import hashlib
import re

from repro.core.rulebase import Rule
from repro.plugins.base import FinalLine, RecognizerPlugin

#: IOS certificate-chain blob: a `certificate ...` header followed by
#: lines of 2+ eight-hex-digit groups, terminated by a bare `quit`.
CERT_HEADER_RE = re.compile(r"^\s*certificate\s+\S", re.IGNORECASE)
HEX_BLOB_RE = re.compile(r"^\s*(?:[0-9A-Fa-f]{8}\s+){1,}[0-9A-Fa-f]{2,8}\s*$")

SSH_KEY_RE = re.compile(
    r"\b(ssh-(?:rsa|dss|ed25519)|ecdsa-sha2-[0-9a-z-]+)( )([A-Za-z0-9+/=]{16,})"
    r"( \S+)?"
)

SNMP_USER_RE = re.compile(
    r"(\bsnmp-server user )(\S+)( )(\S+)( v3)?", re.IGNORECASE
)
AUTH_PRIV_RE = re.compile(
    r"(\b(?:auth (?:md5|sha2?) |priv (?:des|3des|aes(?: \d+)? ))\s*)(\S+)",
    re.IGNORECASE,
)


def _digest(salt: bytes, lines) -> str:
    payload = "\n".join(lines).encode("utf-8", "backslashreplace")
    return hashlib.sha256(salt + payload).hexdigest()[:16]


class BlobBlockFilter:
    """The multi-line pre-pass behind rule B1 (see module docstring)."""

    def __call__(self, lines, ctx):
        out = []
        salt = ctx.config.salt
        report = ctx.report
        i = 0
        total = len(lines)
        while i < total:
            line = lines[i]
            indent = line[: len(line) - len(line.lstrip())]
            if "-----BEGIN " in line:
                j = i + 1
                while j < total and "-----END " not in lines[j]:
                    j += 1
                if j >= total:
                    out.append(
                        FinalLine(
                            "{}! REPRO-BLOB-PARTIAL {}".format(
                                indent, _digest(salt, lines[i:])
                            )
                        )
                    )
                    report.record_rule_hit("B1")
                    report.lines_failed_closed += 1
                    report.flag(
                        ctx.source,
                        i + 1,
                        "B1",
                        "unterminated PEM block; remainder of file "
                        "replaced by fail-closed placeholder",
                    )
                    i = total
                else:
                    out.append(
                        FinalLine(
                            "{}! REPRO-PEM-BLOB {}".format(
                                indent, _digest(salt, lines[i : j + 1])
                            )
                        )
                    )
                    report.record_rule_hit("B1")
                    i = j + 1
                continue
            if (
                CERT_HEADER_RE.match(line)
                and i + 1 < total
                and HEX_BLOB_RE.match(lines[i + 1])
            ):
                j = i + 1
                while j < total and HEX_BLOB_RE.match(lines[j]):
                    j += 1
                if j < total and lines[j].strip() == "quit":
                    out.append(
                        FinalLine(
                            "{}! REPRO-CERT-BLOB {}".format(
                                indent, _digest(salt, lines[i : j + 1])
                            )
                        )
                    )
                    report.record_rule_hit("B1")
                    i = j + 1
                else:
                    # Hex blob without its `quit` terminator: fail closed
                    # on the partial block rather than trust its shape.
                    out.append(
                        FinalLine(
                            "{}! REPRO-BLOB-PARTIAL {}".format(
                                indent, _digest(salt, lines[i:j])
                            )
                        )
                    )
                    report.record_rule_hit("B1")
                    report.lines_failed_closed += 1
                    report.flag(
                        ctx.source,
                        i + 1,
                        "B1",
                        "certificate hex blob without quit terminator "
                        "replaced by fail-closed placeholder",
                    )
                    i = j
                continue
            out.append(line)
            i += 1
        return out


def _apply_ssh_key(line, ctx):
    def handler(match):
        pieces = [
            (match.group(1), True),
            (match.group(2), True),
            (ctx.hash_secret(match.group(3)), True),
        ]
        comment = match.group(4)
        if comment:
            pieces.append((" ", True))
            pieces.append((ctx.hash_secret(comment[1:]), True))
        return pieces

    return line.apply_rule(SSH_KEY_RE, handler)


def _apply_snmp_user(line, ctx):
    def user_handler(match):
        pieces = [
            (match.group(1), True),
            (ctx.hash_secret(match.group(2)), True),
            (match.group(3), True),
            (ctx.hash_secret(match.group(4)), True),
        ]
        if match.group(5):
            # Freeze the version keyword: "v3" segments as the alpha run
            # "v", which is not on the pass-list and would be hashed.
            pieces.append((match.group(5), True))
        return pieces

    def secret_handler(match):
        return [(match.group(1), True), (ctx.hash_secret(match.group(2)), True)]

    hits = line.apply_rule(SNMP_USER_RE, user_handler)
    if hits:
        hits += line.apply_rule(AUTH_PRIV_RE, secret_handler)
    return hits


class BlobsPlugin(RecognizerPlugin):
    family = "blobs"
    rule_prefix = "B"
    description = (
        "Certificate / SSH-key / SNMPv3 opaque-blob recognizers, "
        "multi-line aware, fail-closed on partial matches."
    )

    def build_rules(self):
        return [
            Rule(
                "B1",
                "certificate-blobs",
                "secret",
                "PEM blocks and IOS `crypto pki` certificate hex blobs "
                "are replaced by one salted-digest placeholder line; an "
                "unterminated block fails closed (placeholder + flag). "
                "Realized by a multi-line block filter, not a line rule.",
                None,
                trigger=None,
            ),
            Rule(
                "B2",
                "ssh-public-keys",
                "secret",
                "SSH public key material (ssh-rsa/ssh-ed25519/ecdsa-*) "
                "and its user@host comment are hashed.",
                _apply_ssh_key,
                trigger=("ssh-rsa", "ssh-dss", "ssh-ed25519", "ecdsa-sha2-"),
            ),
            Rule(
                "B3",
                "snmpv3-users",
                "secret",
                "`snmp-server user` names, group names, and auth/priv "
                "passphrases are hashed; algorithm keywords are kept.",
                _apply_snmp_user,
                trigger="snmp-server user ",
            ),
        ]

    def block_filter(self):
        return BlobBlockFilter()

    def passlist_words(self):
        # "pubkey" rides lines like "ip ssh pubkey-chain"; absent from
        # the curated list because v4-era corpora never emit it.
        return ("pubkey",)


PLUGIN = BlobsPlugin()
