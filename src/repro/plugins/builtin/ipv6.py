"""IPv6 prefix-preserving anonymization (family ``ipv6``, rules V*).

Extends the paper's Section 4.3 trie scheme to 128 bits via
:class:`~repro.core.ipanon.Prefix6PreservingMap`: same per-node flip
bits, same freeze contract, keyed under distinct derivation domains so
the v6 permutation is independent of the v4 one.  Output is RFC 5952
canonical (zero-compressed, lowercase), so one address renders
identically however the input spelled it — the cross-file consistency
the paper requires of every mapping.

Trigger soundness: any valid IPv6 literal either contains ``::`` or is
the full 8-group form, which contains an ``h:h:`` digram (two hex groups
joined *and followed* by a colon).  BGP communities (``65000:100``) and
MAC addresses in dotted notation have no such digram, so ordinary IOS
lines never pay the candidate-regex pass.
"""

from __future__ import annotations

import re

from repro.core.rulebase import Rule
from repro.core.ipanon import Prefix6PreservingMap
from repro.netutil import ip6_to_int, trailing_zero_bits128
from repro.plugins.base import RecognizerPlugin

#: Dispatch trigger: a necessary condition of any IPv6 literal.
TRIGGER = re.compile(r"::|[0-9a-f]{1,4}:[0-9a-f]{1,4}:")

#: Candidate extraction: a maximal hex/colon run not embedded in a larger
#: word, with an optional ``/len``.  Validation (is it really IPv6?) is
#: delegated to the stdlib parser inside the context memo, with negative
#: caching, so times (``12:30:00``) and MAC-ish tokens cost one failed
#: parse per distinct text, not per occurrence.
CANDIDATE_RE = re.compile(
    r"(?<![0-9A-Za-z:.])([0-9A-Fa-f:]*:[0-9A-Fa-f:]+)(/\d{1,3})?(?![0-9A-Za-z:.])"
)


def _apply_ipv6(line, ctx):
    def handler(match):
        token = match.group(1)
        if token.count(":") < 2:
            return None
        mapped = ctx.map_ip6_text_or_none(token)
        if mapped is None:
            return None
        return [(mapped, True), (match.group(2) or "", True)]

    return line.apply_rule(CANDIDATE_RE, handler)


class IPv6Plugin(RecognizerPlugin):
    family = "ipv6"
    rule_prefix = "V"
    description = (
        "128-bit prefix-preserving anonymization of IPv6 addresses and "
        "prefixes, RFC 5952 canonical output."
    )

    def setup(self, anonymizer) -> None:
        config = anonymizer.config
        anonymizer.ip6_map = Prefix6PreservingMap(
            config.salt,
            subnet_shaping=config.subnet_shaping,
            preserve_specials=config.preserve_specials,
            collision_policy=config.ip_collision_policy,
        )

    def build_rules(self):
        return [
            Rule(
                "V1",
                "ipv6-addresses",
                "ip",
                "Every IPv6 address or prefix, anywhere on a line, is "
                "mapped through the 128-bit prefix-preserving trie; the "
                "prefix length is kept, specials (::, ::1, ff00::/8) pass "
                "through unchanged.",
                _apply_ipv6,
                trigger=TRIGGER,
            )
        ]

    def passlist_words(self):
        # The R1 segmenter looks "ipv6"/"ipv4" up as the alpha run
        # "ipv"; the curated list only carries the whole tokens (dead
        # entries for the segmenter), so contribute the run itself.
        return ("ipv", "ipv6")

    def freeze_scan(self, anonymizer, configs, stats) -> None:
        """Preload every corpus IPv6 address most-trailing-zeros-first
        (the v6 analog of the v4 subnet-shaping guarantee), before the
        trie freezes."""
        ip6_map = anonymizer.ip6_map
        if ip6_map is None:
            return
        texts = set()
        for text in configs.values():
            for match in CANDIDATE_RE.finditer(text):
                token = match.group(1)
                if token.count(":") >= 2:
                    texts.add(token)
        values = set()
        for token in texts:
            try:
                values.add(ip6_to_int(token))
            except ValueError:
                continue
        for value in sorted(values, key=lambda v: (-trailing_zero_bits128(v), v)):
            ip6_map.map_int(value)
        stats.ipv6_addresses = len(values)


PLUGIN = IPv6Plugin()
