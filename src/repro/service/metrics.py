"""Operational metrics for the anonymization service.

The daemon's ``GET /metrics`` endpoint renders these counters in the
Prometheus text exposition format (``# TYPE`` lines plus
``name{label="value"} count``) using only the stdlib, so any scraper —
Prometheus itself, a curl-based smoke test, or CI — can watch the
service without extra dependencies:

* ``repro_requests_total{endpoint,code}`` — request counts per endpoint
  and HTTP status code.
* ``repro_rule_family_hits_total{family}`` — anonymization rule hits
  aggregated by rule family (see :func:`repro.core.report.rule_family`),
  the per-family view of the paper's Section 4 rule groupings.
* ``repro_request_seconds_bucket{endpoint,le}`` — cumulative latency
  histogram per heavy endpoint, plus ``_sum`` and ``_count``.
* ``repro_queue_depth`` / ``repro_requests_in_flight`` — backpressure
  gauges sampled from the bounded executor at scrape time.
* ``repro_sessions`` — live session count.
* Named counters registered at runtime — the durability suite
  (``repro_service_journal_records_total``,
  ``repro_service_journal_snapshots_total``,
  ``repro_service_journal_torn_discarded_total``,
  ``repro_service_journal_quarantined_total``,
  ``repro_session_recoveries_total``,
  ``repro_idempotent_replays_total``) and the backpressure timeout
  counter ``repro_requests_timed_out_total``.  They are pre-registered
  at 0 so dashboards and CI assertions see them before the first event.

All mutation goes through one lock; scraping renders a consistent
snapshot.  Counters never raise: an unknown rule id lands in the
``other`` family rather than failing a request.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.report import rule_family

__all__ = ["LATENCY_BUCKETS", "ServiceMetrics"]

#: Histogram bucket upper bounds in seconds (cumulative, Prometheus
#: convention; +Inf is implicit in ``_count``).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
)


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '{}="{}"'.format(key, str(value).replace("\\", "\\\\").replace('"', '\\"'))
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class ServiceMetrics:
    """Thread-safe counter/histogram registry for one daemon process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: Dict[Tuple[str, int], int] = {}
        self._family_hits: Dict[str, int] = {}
        self._latency_buckets: Dict[str, List[int]] = {}
        self._latency_sum: Dict[str, float] = {}
        self._latency_count: Dict[str, int] = {}
        #: Named monotonic counters, ``{name: (help, value)}``.
        self._counters: Dict[str, Tuple[str, int]] = {}
        #: Gauge callbacks sampled at scrape time, ``{name: (help, fn)}``.
        self._gauges: Dict[str, Tuple[str, Callable[[], float]]] = {}

    # -- recording -------------------------------------------------------

    def observe_request(
        self, endpoint: str, code: int, seconds: Optional[float] = None
    ) -> None:
        """Count one request; *seconds* also feeds the latency histogram."""
        with self._lock:
            key = (endpoint, code)
            self._requests[key] = self._requests.get(key, 0) + 1
            if seconds is None:
                return
            buckets = self._latency_buckets.setdefault(
                endpoint, [0] * len(LATENCY_BUCKETS)
            )
            for index, bound in enumerate(LATENCY_BUCKETS):
                if seconds <= bound:
                    buckets[index] += 1
            self._latency_sum[endpoint] = (
                self._latency_sum.get(endpoint, 0.0) + seconds
            )
            self._latency_count[endpoint] = (
                self._latency_count.get(endpoint, 0) + 1
            )

    def record_rule_hits(self, rule_hits: Dict[str, int]) -> None:
        """Fold one response's per-rule hit counters in, per family."""
        with self._lock:
            for rule_id, count in rule_hits.items():
                family = rule_family(rule_id)
                self._family_hits[family] = (
                    self._family_hits.get(family, 0) + count
                )

    def register_counter(self, name: str, help_text: str) -> None:
        """Pre-register a named counter at 0 (so it renders before the
        first increment — CI asserts on presence, not just growth)."""
        with self._lock:
            if name not in self._counters:
                self._counters[name] = (help_text, 0)

    def inc_counter(self, name: str, amount: int = 1, help_text: str = "") -> None:
        """Increment a named monotonic counter (creating it at need)."""
        with self._lock:
            existing = self._counters.get(name)
            if existing is None:
                self._counters[name] = (help_text, amount)
            else:
                self._counters[name] = (existing[0] or help_text, existing[1] + amount)

    def counter_value(self, name: str) -> int:
        with self._lock:
            entry = self._counters.get(name)
            return entry[1] if entry is not None else 0

    def register_gauge(
        self, name: str, help_text: str, fn: Callable[[], float]
    ) -> None:
        """Register a gauge sampled (under the lock) at scrape time."""
        with self._lock:
            self._gauges[name] = (help_text, fn)

    # -- introspection (tests) ------------------------------------------

    def request_count(self, endpoint: str) -> int:
        with self._lock:
            return sum(
                count
                for (ep, _code), count in self._requests.items()
                if ep == endpoint
            )

    def family_hit_count(self, family: str) -> int:
        with self._lock:
            return self._family_hits.get(family, 0)

    # -- rendering -------------------------------------------------------

    def render(self) -> str:
        """The Prometheus text exposition of every metric."""
        with self._lock:
            lines: List[str] = []
            lines.append("# HELP repro_requests_total Requests served, per endpoint and status code.")
            lines.append("# TYPE repro_requests_total counter")
            for (endpoint, code), count in sorted(self._requests.items()):
                lines.append(
                    "repro_requests_total{} {}".format(
                        _format_labels({"endpoint": endpoint, "code": str(code)}),
                        count,
                    )
                )
            lines.append("# HELP repro_rule_family_hits_total Anonymization rule hits per rule family.")
            lines.append("# TYPE repro_rule_family_hits_total counter")
            for family, count in sorted(self._family_hits.items()):
                lines.append(
                    "repro_rule_family_hits_total{} {}".format(
                        _format_labels({"family": family}), count
                    )
                )
            for name in sorted(self._counters):
                help_text, value = self._counters[name]
                lines.append("# HELP {} {}".format(name, help_text or name))
                lines.append("# TYPE {} counter".format(name))
                lines.append("{} {}".format(name, value))
            lines.append("# HELP repro_request_seconds Request latency, per heavy endpoint.")
            lines.append("# TYPE repro_request_seconds histogram")
            for endpoint in sorted(self._latency_buckets):
                buckets = self._latency_buckets[endpoint]
                for bound, cumulative in zip(LATENCY_BUCKETS, buckets):
                    lines.append(
                        "repro_request_seconds_bucket{} {}".format(
                            _format_labels(
                                {"endpoint": endpoint, "le": _format_le(bound)}
                            ),
                            cumulative,
                        )
                    )
                lines.append(
                    "repro_request_seconds_bucket{} {}".format(
                        _format_labels({"endpoint": endpoint, "le": "+Inf"}),
                        self._latency_count.get(endpoint, 0),
                    )
                )
                lines.append(
                    "repro_request_seconds_sum{} {}".format(
                        _format_labels({"endpoint": endpoint}),
                        repr(self._latency_sum.get(endpoint, 0.0)),
                    )
                )
                lines.append(
                    "repro_request_seconds_count{} {}".format(
                        _format_labels({"endpoint": endpoint}),
                        self._latency_count.get(endpoint, 0),
                    )
                )
            for name in sorted(self._gauges):
                help_text, fn = self._gauges[name]
                try:
                    value = float(fn())
                except Exception:
                    # A gauge callback must never fail a scrape.
                    continue
                lines.append("# HELP {} {}".format(name, help_text))
                lines.append("# TYPE {} gauge".format(name))
                lines.append("{} {}".format(name, _format_value(value)))
            return "\n".join(lines) + "\n"


def _format_le(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return repr(bound) if not float(bound).is_integer() else "{:.1f}".format(bound)
