"""Operational metrics for the anonymization service.

The daemon's ``GET /metrics`` endpoint renders these counters in the
Prometheus text exposition format (``# TYPE`` lines plus
``name{label="value"} count``) using only the stdlib, so any scraper —
Prometheus itself, a curl-based smoke test, or CI — can watch the
service without extra dependencies:

* ``repro_requests_total{endpoint,code}`` — request counts per endpoint
  and HTTP status code.
* ``repro_rule_family_hits_total{family}`` — anonymization rule hits
  aggregated by rule family (see :func:`repro.core.report.rule_family`),
  the per-family view of the paper's Section 4 rule groupings.
* ``repro_request_seconds_bucket{endpoint,le}`` — cumulative latency
  histogram per heavy endpoint, plus ``_sum`` and ``_count``.
* ``repro_queue_depth`` / ``repro_requests_in_flight`` — backpressure
  gauges sampled from the bounded executor at scrape time.
* ``repro_sessions`` — live session count.
* Named counters registered at runtime — the durability suite
  (``repro_service_journal_records_total``,
  ``repro_service_journal_snapshots_total``,
  ``repro_service_journal_torn_discarded_total``,
  ``repro_service_journal_quarantined_total``,
  ``repro_session_recoveries_total``,
  ``repro_idempotent_replays_total``) and the backpressure timeout
  counter ``repro_requests_timed_out_total``.  They are pre-registered
  at 0 so dashboards and CI assertions see them before the first event.

**Consistency.**  All mutation goes through one lock, and a scrape
first takes :meth:`ServiceMetrics.snapshot` — the complete state
(counters, every histogram's buckets *and* its sum *and* its count,
gauges sampled) captured atomically under that same lock — and only
then renders text outside the lock.  A scrape that races an update can
therefore never observe a histogram whose ``_sum`` includes a request
its buckets do not (or vice versa), in one process or many.

**Aggregation.**  In the pre-fork multi-worker daemon each process owns
its own registry; a worker answering ``GET /metrics`` collects every
shard's snapshot (its own locally, its siblings over their shard-direct
listeners) and renders :func:`merge_snapshots` of them, so the counters
stay corpus-level truths instead of silently becoming per-process lies.
Counters never raise: an unknown rule id lands in the ``other`` family
rather than failing a request.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.report import rule_family

__all__ = [
    "LATENCY_BUCKETS",
    "ServiceMetrics",
    "merge_snapshots",
    "render_snapshot",
]

#: Histogram bucket upper bounds in seconds (cumulative, Prometheus
#: convention; +Inf is implicit in ``_count``).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
)

SNAPSHOT_FORMAT_VERSION = 1


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '{}="{}"'.format(key, str(value).replace("\\", "\\\\").replace('"', '\\"'))
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class ServiceMetrics:
    """Thread-safe counter/histogram registry for one daemon process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: Dict[Tuple[str, int], int] = {}
        self._family_hits: Dict[str, int] = {}
        self._latency_buckets: Dict[str, List[int]] = {}
        self._latency_sum: Dict[str, float] = {}
        self._latency_count: Dict[str, int] = {}
        #: Named monotonic counters, ``{name: (help, value)}``.
        self._counters: Dict[str, Tuple[str, int]] = {}
        #: Gauge callbacks sampled at scrape time, ``{name: (help, fn)}``.
        self._gauges: Dict[str, Tuple[str, Callable[[], float]]] = {}
        #: Labeled gauge callbacks, ``{name: (help, {label-tuple: fn})}``
        #: where the key is ``tuple(sorted(labels.items()))``.
        self._labeled_gauges: Dict[
            str, Tuple[str, Dict[Tuple[Tuple[str, str], ...], Callable[[], float]]]
        ] = {}

    # -- recording -------------------------------------------------------

    def observe_request(
        self, endpoint: str, code: int, seconds: Optional[float] = None
    ) -> None:
        """Count one request; *seconds* also feeds the latency histogram."""
        with self._lock:
            key = (endpoint, code)
            self._requests[key] = self._requests.get(key, 0) + 1
            if seconds is None:
                return
            buckets = self._latency_buckets.setdefault(
                endpoint, [0] * len(LATENCY_BUCKETS)
            )
            for index, bound in enumerate(LATENCY_BUCKETS):
                if seconds <= bound:
                    buckets[index] += 1
            self._latency_sum[endpoint] = (
                self._latency_sum.get(endpoint, 0.0) + seconds
            )
            self._latency_count[endpoint] = (
                self._latency_count.get(endpoint, 0) + 1
            )

    def record_rule_hits(self, rule_hits: Dict[str, int]) -> None:
        """Fold one response's per-rule hit counters in, per family."""
        with self._lock:
            for rule_id, count in rule_hits.items():
                family = rule_family(rule_id)
                self._family_hits[family] = (
                    self._family_hits.get(family, 0) + count
                )

    def register_rule_family(self, family: str) -> None:
        """Pre-register one rule family's hit counter at 0.

        The daemon seeds every family it can produce — the builtin
        groupings plus each active recognizer plugin's family — at
        startup, so ``repro_rule_family_hits_total{family=...}`` renders
        from the first scrape instead of appearing only after the first
        hit (a gap that breaks rate() queries and CI presence asserts).
        """
        with self._lock:
            self._family_hits.setdefault(family, 0)

    def register_counter(self, name: str, help_text: str) -> None:
        """Pre-register a named counter at 0 (so it renders before the
        first increment — CI asserts on presence, not just growth)."""
        with self._lock:
            if name not in self._counters:
                self._counters[name] = (help_text, 0)

    def inc_counter(self, name: str, amount: int = 1, help_text: str = "") -> None:
        """Increment a named monotonic counter (creating it at need)."""
        with self._lock:
            existing = self._counters.get(name)
            if existing is None:
                self._counters[name] = (help_text, amount)
            else:
                self._counters[name] = (existing[0] or help_text, existing[1] + amount)

    def counter_value(self, name: str) -> int:
        with self._lock:
            entry = self._counters.get(name)
            return entry[1] if entry is not None else 0

    def register_gauge(
        self, name: str, help_text: str, fn: Callable[[], float]
    ) -> None:
        """Register a gauge sampled (under the lock) at scrape time."""
        with self._lock:
            self._gauges[name] = (help_text, fn)

    def register_labeled_gauge(
        self,
        name: str,
        help_text: str,
        labels: Dict[str, str],
        fn: Callable[[], float],
    ) -> None:
        """Register one labeled series of a gauge (e.g.
        ``repro_circuit_open{shard="1"}``), sampled at scrape time."""
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            existing = self._labeled_gauges.get(name)
            if existing is None:
                self._labeled_gauges[name] = (help_text, {key: fn})
            else:
                existing[1][key] = fn

    # -- introspection (tests) ------------------------------------------

    def request_count(self, endpoint: str) -> int:
        with self._lock:
            return sum(
                count
                for (ep, _code), count in self._requests.items()
                if ep == endpoint
            )

    def family_hit_count(self, family: str) -> int:
        with self._lock:
            return self._family_hits.get(family, 0)

    # -- snapshot / rendering -------------------------------------------

    def snapshot(self) -> Dict:
        """The complete registry state, captured under one lock.

        JSON-able (``/metrics/local`` ships it between workers): tuple
        keys flatten to lists, gauges are sampled to numbers.  Because
        everything — a histogram's buckets, its ``_sum``, and its
        ``_count`` — is read inside the same critical section that every
        update holds, a scrape concurrent with ``observe_request`` sees
        either all of an update or none of it: no sum/count/bucket
        tearing, which is what makes merged multi-process expositions
        (and single-process scrapes under load) trustworthy.
        """
        with self._lock:
            snap = {
                "format_version": SNAPSHOT_FORMAT_VERSION,
                "requests": [
                    [endpoint, code, count]
                    for (endpoint, code), count in sorted(self._requests.items())
                ],
                "families": dict(self._family_hits),
                "counters": {
                    name: [help_text, value]
                    for name, (help_text, value) in self._counters.items()
                },
                "latency": {
                    endpoint: {
                        "buckets": list(buckets),
                        "sum": self._latency_sum.get(endpoint, 0.0),
                        "count": self._latency_count.get(endpoint, 0),
                    }
                    for endpoint, buckets in self._latency_buckets.items()
                },
                "gauges": {},
                "labeled_gauges": {},
            }
            for name, (help_text, fn) in self._gauges.items():
                try:
                    snap["gauges"][name] = [help_text, float(fn())]
                except Exception:
                    # A gauge callback must never fail a scrape.
                    continue
            for name, (help_text, series) in self._labeled_gauges.items():
                samples = []
                for key, fn in sorted(series.items()):
                    try:
                        samples.append([dict(key), float(fn())])
                    except Exception:
                        continue
                snap["labeled_gauges"][name] = [help_text, samples]
            return snap

    def render(self) -> str:
        """The Prometheus text exposition of every metric."""
        return render_snapshot(self.snapshot())


def merge_snapshots(snapshots: Iterable[Dict]) -> Dict:
    """Sum per-worker snapshots into one corpus-level snapshot.

    Counters, request counts, rule-family hits, and histogram
    buckets/sums/counts add; gauges add too (queue depth across N
    workers *is* the daemon's total backlog, ditto live sessions).
    Help text comes from the first snapshot that carries the metric.
    """
    merged: Dict = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "requests": [],
        "families": {},
        "counters": {},
        "latency": {},
        "gauges": {},
        "labeled_gauges": {},
    }
    requests: Dict[Tuple[str, int], int] = {}
    for snap in snapshots:
        if not isinstance(snap, dict):
            continue
        for entry in snap.get("requests", []):
            endpoint, code, count = entry
            requests[(endpoint, int(code))] = (
                requests.get((endpoint, int(code)), 0) + int(count)
            )
        for family, count in snap.get("families", {}).items():
            merged["families"][family] = (
                merged["families"].get(family, 0) + int(count)
            )
        for name, (help_text, value) in snap.get("counters", {}).items():
            existing = merged["counters"].get(name)
            if existing is None:
                merged["counters"][name] = [help_text, int(value)]
            else:
                existing[0] = existing[0] or help_text
                existing[1] += int(value)
        for endpoint, hist in snap.get("latency", {}).items():
            existing = merged["latency"].get(endpoint)
            if existing is None:
                merged["latency"][endpoint] = {
                    "buckets": list(hist["buckets"]),
                    "sum": float(hist["sum"]),
                    "count": int(hist["count"]),
                }
            else:
                for index, value in enumerate(hist["buckets"]):
                    existing["buckets"][index] += int(value)
                existing["sum"] += float(hist["sum"])
                existing["count"] += int(hist["count"])
        for name, (help_text, value) in snap.get("gauges", {}).items():
            existing = merged["gauges"].get(name)
            if existing is None:
                merged["gauges"][name] = [help_text, float(value)]
            else:
                existing[0] = existing[0] or help_text
                existing[1] += float(value)
        for name, (help_text, samples) in snap.get(
            "labeled_gauges", {}
        ).items():
            existing = merged["labeled_gauges"].setdefault(name, [help_text, []])
            existing[0] = existing[0] or help_text
            index = {
                tuple(sorted(labels.items())): sample
                for labels, sample in (
                    (entry[0], entry) for entry in existing[1]
                )
            }
            for labels, value in samples:
                key = tuple(sorted(labels.items()))
                if key in index:
                    index[key][1] += float(value)
                else:
                    existing[1].append([dict(labels), float(value)])
                    index[key] = existing[1][-1]
    merged["requests"] = [
        [endpoint, code, count]
        for (endpoint, code), count in sorted(requests.items())
    ]
    return merged


def render_snapshot(
    snapshot: Dict, worker_up: Optional[Dict[int, int]] = None
) -> str:
    """Render one (possibly merged) snapshot as Prometheus text.

    *worker_up*, when given, adds ``repro_worker_up{shard="i"}`` gauges
    so a scrape of the sharded daemon reports which workers answered —
    a respawning worker shows up as 0, never as a failed scrape.
    """
    lines: List[str] = []
    lines.append("# HELP repro_requests_total Requests served, per endpoint and status code.")
    lines.append("# TYPE repro_requests_total counter")
    for endpoint, code, count in snapshot.get("requests", []):
        lines.append(
            "repro_requests_total{} {}".format(
                _format_labels({"endpoint": endpoint, "code": str(code)}),
                count,
            )
        )
    lines.append("# HELP repro_rule_family_hits_total Anonymization rule hits per rule family.")
    lines.append("# TYPE repro_rule_family_hits_total counter")
    for family, count in sorted(snapshot.get("families", {}).items()):
        lines.append(
            "repro_rule_family_hits_total{} {}".format(
                _format_labels({"family": family}), count
            )
        )
    counters = snapshot.get("counters", {})
    for name in sorted(counters):
        help_text, value = counters[name]
        lines.append("# HELP {} {}".format(name, help_text or name))
        lines.append("# TYPE {} counter".format(name))
        lines.append("{} {}".format(name, value))
    lines.append("# HELP repro_request_seconds Request latency, per heavy endpoint.")
    lines.append("# TYPE repro_request_seconds histogram")
    latency = snapshot.get("latency", {})
    for endpoint in sorted(latency):
        hist = latency[endpoint]
        for bound, cumulative in zip(LATENCY_BUCKETS, hist["buckets"]):
            lines.append(
                "repro_request_seconds_bucket{} {}".format(
                    _format_labels(
                        {"endpoint": endpoint, "le": _format_le(bound)}
                    ),
                    cumulative,
                )
            )
        lines.append(
            "repro_request_seconds_bucket{} {}".format(
                _format_labels({"endpoint": endpoint, "le": "+Inf"}),
                hist["count"],
            )
        )
        lines.append(
            "repro_request_seconds_sum{} {}".format(
                _format_labels({"endpoint": endpoint}),
                repr(float(hist["sum"])),
            )
        )
        lines.append(
            "repro_request_seconds_count{} {}".format(
                _format_labels({"endpoint": endpoint}),
                hist["count"],
            )
        )
    gauges = snapshot.get("gauges", {})
    for name in sorted(gauges):
        help_text, value = gauges[name]
        lines.append("# HELP {} {}".format(name, help_text))
        lines.append("# TYPE {} gauge".format(name))
        lines.append("{} {}".format(name, _format_value(float(value))))
    labeled = snapshot.get("labeled_gauges", {})
    for name in sorted(labeled):
        help_text, samples = labeled[name]
        lines.append("# HELP {} {}".format(name, help_text or name))
        lines.append("# TYPE {} gauge".format(name))
        for labels, value in sorted(
            samples, key=lambda entry: sorted(entry[0].items())
        ):
            lines.append(
                "{}{} {}".format(
                    name,
                    _format_labels(labels),
                    _format_value(float(value)),
                )
            )
    if worker_up is not None:
        lines.append(
            "# HELP repro_worker_up Whether each shard's worker answered "
            "the aggregated scrape (0 while respawning)."
        )
        lines.append("# TYPE repro_worker_up gauge")
        for shard in sorted(worker_up):
            lines.append(
                "repro_worker_up{} {}".format(
                    _format_labels({"shard": str(shard)}), worker_up[shard]
                )
            )
    return "\n".join(lines) + "\n"


def _format_le(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return repr(bound) if not float(bound).is_integer() else "{:.1f}".format(bound)
