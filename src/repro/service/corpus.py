"""Corpus fan-out: drive a whole corpus across the sharded service.

``repro-anonymize submit --corpus DIR`` is the service-backed twin of
the batch ``--jobs N`` pipeline at corpus scale.  One session = one
shard = one worker in the pre-fork daemon, so a single session can
never use more than one core; this layer opens **one session per
shard** (created over each shard's direct listener, so rejection
sampling makes that worker the owner), freezes every session over the
*full* corpus manifest, and fans the files across the per-shard
sessions from a bounded thread pool.

**Why failover is safe.**  After a freeze every mapping is a pure
function of (salt, input): any session frozen over the same corpus
under the same salt produces byte-identical output for any file.  A
file's *primary* shard is ``shard_for(name, shard_count)`` — a stable
spread, nothing more — and when that shard's worker is dead, parked on
a full disk (507), or behind an open circuit breaker, the file is
simply re-driven on the next shard.  Duplicated work is harmless
(idempotency keys make retries converge server-side; identical bytes
make cross-shard duplicates invisible), so the fan-out can be as
aggressive as the deadline budget allows.

Robustness machinery, bottom-up:

* :class:`ShardBreaker` — a per-shard circuit breaker.  ``threshold``
  consecutive disconnect-class failures open it; after ``cooldown``
  seconds one half-open probe is allowed, and its outcome closes or
  re-opens the breaker.  An open breaker makes the fan-out *skip* the
  shard instead of burning its deadline budget on a worker that is
  mid-respawn.
* Hedged retries — each per-shard client is a
  :class:`~repro.service.client.RetryingServiceClient` with a modest
  attempt budget, so brief blips (a respawn the parent-bound direct
  socket bridges, a 507 disk park that clears) heal invisibly; its
  ``retries``/``resumes`` counters surface those invisible saves into
  the corpus report's failover accounting.
* :class:`ResumeManifest` — a client-side JSONL manifest (fsync'd per
  line, torn-tail tolerant, salt-fingerprint guarded like the batch
  runner's run manifest) recording each file's output digest.  An
  interrupted run re-invoked with ``--resume`` skips every file whose
  recorded digest still matches the bytes on disk and re-drives the
  rest — byte-identical to a never-interrupted run, because every
  output is a pure function of (salt, input).

Exit codes: ``EXIT_PARTIAL_CORPUS`` when the run *completed* but some
files were quarantined (every shard exhausted / deadline spent),
``EXIT_LEAKS`` when flags were raised, ``EXIT_SERVICE_ERROR`` when the
service could not be reached at all.

``REPRO_CORPUS_ABORT_AFTER=N`` is a test seam: the run aborts (as if
interrupted) once N files have been recorded, so the chaos drill can
prove ``--resume`` byte-identity deterministically.
"""

from __future__ import annotations

import json
import os
import queue
import sys
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.crashpoints import crash_here
from repro.core.digests import digest_text
from repro.core.runner import atomic_write_text, salt_fingerprint
from repro.core.status import (
    EXIT_LEAKS,
    EXIT_OK,
    EXIT_PARTIAL_CORPUS,
    EXIT_SERVICE_ERROR,
    EXIT_STATE_ERROR,
)
from repro.service.client import (
    RetryingServiceClient,
    RetryPolicy,
    ServiceClientError,
)
from repro.service.sharding import shard_for

__all__ = [
    "ABORT_AFTER_ENV",
    "CorpusAborted",
    "CorpusRunner",
    "MANIFEST_NAME",
    "ResumeManifest",
    "ShardBreaker",
]

MANIFEST_NAME = ".repro-corpus-manifest.jsonl"
MANIFEST_FORMAT_VERSION = 1

ABORT_AFTER_ENV = "REPRO_CORPUS_ABORT_AFTER"

#: Full failover laps across every shard before a file is quarantined
#: when no ``--deadline`` bounds the run.
DEFAULT_MAX_LAPS = 5


class CorpusAborted(RuntimeError):
    """The run was interrupted (``REPRO_CORPUS_ABORT_AFTER`` test seam
    or Ctrl-C); the resume manifest holds everything completed so far."""


class ShardBreaker:
    """Circuit breaker for one shard's request path.

    closed → (``threshold`` consecutive failures) → open → (``cooldown``
    elapsed) → half-open, where exactly one probe is allowed; its
    success closes the breaker, its failure re-opens it for another
    cooldown.  Thread-safe; *clock* is injectable for tests.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._probing:
                return "half-open"
            if self._clock() - self._opened_at >= self.cooldown:
                return "half-open"
            return "open"

    def allow(self) -> bool:
        """May a request go to this shard right now?

        While open, returns False until the cooldown has elapsed; then
        exactly one caller gets True (the half-open probe) and everyone
        else keeps getting False until the probe reports back.
        """
        with self._lock:
            if self._opened_at is None:
                return True
            if self._probing:
                return False
            if self._clock() - self._opened_at < self.cooldown:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            if self._probing:
                # The half-open probe failed: re-open for a fresh cooldown.
                self._probing = False
                self._opened_at = self._clock()
                return
            self._failures += 1
            if self._failures >= self.threshold and self._opened_at is None:
                self._opened_at = self._clock()


class ResumeManifest:
    """The client-side JSONL resume manifest for one corpus run.

    Line 1 is a header binding the manifest to a salt (by keyed
    fingerprint, never the salt) and an output scheme; every later line
    records one completed file: name, output digest, output path, and
    status.  Appends are flushed and fsync'd before the next file is
    driven, so the manifest is at worst missing (or tearing) its final
    line — and a torn final line is simply ignored at load, exactly
    like the journal's torn-tail discard.
    """

    def __init__(self, path: Path, fingerprint: str, suffix: str):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.suffix = suffix
        self._handle = None
        self._lock = threading.Lock()
        #: name -> {"digest", "out_path", "status"} loaded or appended.
        self.entries: Dict[str, Dict] = {}

    # -- load ------------------------------------------------------------

    @classmethod
    def load(
        cls, path: Path, fingerprint: str, suffix: str
    ) -> "ResumeManifest":
        """Load an existing manifest for ``--resume``.

        A fingerprint mismatch is fail-closed (the outputs on disk were
        written under a different salt — resuming would silently mix
        mapping universes); a torn or missing final line is tolerated.
        """
        manifest = cls(path, fingerprint, suffix)
        try:
            data = Path(path).read_bytes()
        except OSError as exc:
            raise ManifestError(
                "cannot read resume manifest {}: {}".format(path, exc)
            ) from exc
        lines = data.split(b"\n")
        if data.endswith(b"\n"):
            lines = lines[:-1]
        else:
            # Unterminated final line: the canonical interrupt artifact.
            lines = lines[:-1]
        if not lines:
            raise ManifestError(
                "resume manifest {} is empty".format(path)
            )
        header = _parse_manifest_line(lines[0])
        if (
            header is None
            or header.get("kind") != "corpus-resume"
            or header.get("format_version") != MANIFEST_FORMAT_VERSION
        ):
            raise ManifestError(
                "resume manifest {} has an unrecognized header".format(path)
            )
        if header.get("salt_fingerprint") != fingerprint:
            raise ManifestError(
                "resume manifest {} was written under a different salt "
                "(fingerprint {} != {}); refusing to mix mapping "
                "universes".format(
                    path, header.get("salt_fingerprint"), fingerprint
                )
            )
        if header.get("suffix") != suffix:
            raise ManifestError(
                "resume manifest {} was written with --suffix {!r}, not "
                "{!r}".format(path, header.get("suffix"), suffix)
            )
        for line in lines[1:]:
            entry = _parse_manifest_line(line)
            if entry is None or not isinstance(entry.get("name"), str):
                # A torn mid-file line cannot happen (appends are
                # sequential + fsync'd); a torn *final* line was already
                # dropped above, so anything unparsable here is best
                # skipped rather than trusted.
                continue
            manifest.entries[entry["name"]] = entry
        return manifest

    def completed(self, name: str, out_path: Path) -> bool:
        """Is *name* already done, with its recorded bytes still on disk?

        The digest re-check makes a deleted or hand-edited output file
        re-drive instead of being trusted blindly — the same discipline
        as ``runner.py --resume``.
        """
        entry = self.entries.get(name)
        if entry is None or entry.get("status") == "quarantined":
            return False
        try:
            text = Path(out_path).read_text(encoding="utf-8")
        except OSError:
            return False
        return digest_text(text) == entry.get("digest")

    # -- append ----------------------------------------------------------

    def open_append(self, fresh: bool) -> None:
        """Open for appending; *fresh* truncates and writes the header."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "wb" if fresh else "ab"
        self._handle = open(self.path, mode)
        if fresh:
            self._append_line(
                {
                    "format_version": MANIFEST_FORMAT_VERSION,
                    "kind": "corpus-resume",
                    "salt_fingerprint": self.fingerprint,
                    "suffix": self.suffix,
                }
            )
        elif self._handle.tell() == 0:
            raise ManifestError(
                "resume manifest {} vanished between load and "
                "append".format(self.path)
            )
        elif not self._ends_with_newline():
            # Resume over a torn tail: drop the unacknowledged bytes so
            # the next append starts on a fresh line.
            with self._lock:
                offset = self._valid_length()
                self._handle.truncate(offset)
                self._handle.seek(offset)

    def _ends_with_newline(self) -> bool:
        data = self.path.read_bytes()
        return data.endswith(b"\n")

    def _valid_length(self) -> int:
        data = self.path.read_bytes()
        if data.endswith(b"\n"):
            return len(data)
        cut = data.rfind(b"\n")
        return cut + 1 if cut != -1 else 0

    def record(self, name: str, digest: str, out_path: str, status: str) -> None:
        entry = {
            "name": name,
            "digest": digest,
            "out_path": str(out_path),
            "status": status,
        }
        self._append_line(entry)
        self.entries[name] = entry

    def _append_line(self, document: Dict) -> None:
        line = json.dumps(document, sort_keys=True).encode("utf-8") + b"\n"
        with self._lock:
            self._handle.write(line)
            self._handle.flush()
            crash_here("corpus.manifest.pre-fsync")
            os.fsync(self._handle.fileno())
            crash_here("corpus.manifest.post-fsync")

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None


class ManifestError(RuntimeError):
    """The resume manifest cannot be used (corrupt header, wrong salt)."""


def _parse_manifest_line(line: bytes) -> Optional[Dict]:
    try:
        document = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return document if isinstance(document, dict) else None


class _ShardDown(RuntimeError):
    """One shard failed this file (internal to the failover loop)."""


class CorpusRunner:
    """Drive one corpus through the (possibly sharded) service.

    Construct, then :meth:`run`.  All the knobs are plain attributes so
    tests can build runners against in-process services with injectable
    sleep/clock and zero cooldowns.
    """

    def __init__(
        self,
        base_url: Optional[str],
        unix_socket: Optional[str],
        salt: str,
        configs: Dict[str, str],
        out_paths: Dict[str, Path],
        jobs: int = 4,
        deadline: Optional[float] = None,
        resume: bool = False,
        manifest_path: Optional[Path] = None,
        retries: int = 3,
        retry_base_delay: float = 0.1,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        log: Callable[[str], None] = print,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.base_url = base_url
        self.unix_socket = unix_socket
        self.salt = salt
        self.configs = configs
        self.out_paths = out_paths
        self.jobs = jobs
        self.deadline = deadline
        self.resume = resume
        self.manifest_path = manifest_path
        self.retries = retries
        self.retry_base_delay = retry_base_delay
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._sleep = sleep
        self._clock = clock
        self._log = log
        self._abort_after = _abort_after_from_env()
        self._completed_count = 0
        self._stop = threading.Event()
        self._lock = threading.Lock()
        # Populated by run():
        self.clients: List[RetryingServiceClient] = []
        self.session_ids: List[str] = []
        self.breakers: List[ShardBreaker] = []
        self.manifest: Optional[ResumeManifest] = None
        self.report: Dict = {}

    # -- topology ---------------------------------------------------------

    def _discover_shards(self) -> List[str]:
        """Each shard's direct base URL (one entry for a plain daemon)."""
        probe = RetryingServiceClient(
            base_url=self.base_url,
            unix_socket=self.unix_socket,
            salt=self.salt,
            policy=RetryPolicy(
                max_attempts=self.retries, base_delay=self.retry_base_delay
            ),
            sleep=self._sleep,
            clock=self._clock,
        )
        try:
            health = probe.healthz()
        finally:
            probe.close()
        shards = health.get("shards")
        if isinstance(shards, dict) and shards:
            return [
                url
                for _, url in sorted(
                    shards.items(), key=lambda item: int(item[0])
                )
            ]
        return [self.base_url or "unix://{}".format(self.unix_socket)]

    def _open_sessions(self, shard_urls: List[str]) -> None:
        """One client + one frozen session per shard.

        Creating over shard *i*'s direct listener makes worker *i* own
        the session (ids are rejection-sampled server-side), and every
        session freezes over the *full* corpus — the invariant that
        makes any shard interchangeable for any file.
        """
        policy = RetryPolicy(
            max_attempts=self.retries, base_delay=self.retry_base_delay
        )
        for url in shard_urls:
            if url.startswith("unix://"):
                client = RetryingServiceClient(
                    unix_socket=url[len("unix://"):],
                    salt=self.salt,
                    policy=policy,
                    sleep=self._sleep,
                    clock=self._clock,
                )
            else:
                client = RetryingServiceClient(
                    base_url=url,
                    salt=self.salt,
                    policy=policy,
                    sleep=self._sleep,
                    clock=self._clock,
                )
            self.clients.append(client)
            self.breakers.append(
                ShardBreaker(
                    threshold=self.breaker_threshold,
                    cooldown=self.breaker_cooldown,
                    clock=self._clock,
                )
            )
        for index, client in enumerate(self.clients):
            session = client.create_session(self.salt)
            self.session_ids.append(session["id"])
            stats = client.freeze(session["id"], self.configs)
            self._log(
                "shard {}: session {} frozen over {} files "
                "({} addresses)".format(
                    index,
                    session["id"],
                    len(self.configs),
                    stats.get("addresses", "?"),
                )
            )

    # -- the per-file failover chain --------------------------------------

    def _drive_file(
        self, name: str, overall_deadline: Optional[float]
    ) -> Tuple[Optional[Dict], int, int]:
        """Drive one file to a terminal state.

        Returns ``(result, shard_index, failovers)`` — result is None
        when every shard (and the deadline budget) was exhausted and the
        file must be quarantined.  The first attempt goes to the file's
        primary shard; every later attempt is a *failover*, tagged with
        ``X-Repro-Failover`` so the server-side counter sees it too.
        """
        count = len(self.clients)
        primary = shard_for(name, count)
        text = self.configs[name]
        failovers = 0
        attempts = 0
        laps = 0
        max_laps = DEFAULT_MAX_LAPS if overall_deadline is None else None
        while True:
            for offset in range(count):
                index = (primary + offset) % count
                if self._stop.is_set():
                    raise CorpusAborted("corpus run interrupted")
                if (
                    overall_deadline is not None
                    and self._clock() >= overall_deadline
                ):
                    return None, index, failovers
                if not self.breakers[index].allow():
                    continue
                headers = {"X-Repro-Corpus": "1"}
                if attempts > 0:
                    headers["X-Repro-Failover"] = "1"
                attempts += 1
                try:
                    result = self.clients[index].anonymize(
                        self.session_ids[index],
                        text,
                        source=name,
                        extra_headers=headers,
                    )
                except (ServiceClientError, OSError) as exc:
                    self.breakers[index].record_failure()
                    failovers += 1
                    self._log(
                        "shard {} failed {} ({}); failing over".format(
                            index, name, type(exc).__name__
                        )
                    )
                    continue
                self.breakers[index].record_success()
                return result, index, failovers
            laps += 1
            if max_laps is not None and laps >= max_laps:
                return None, primary, failovers
            # Every shard is open or failing: wait out the shortest
            # cooldown (bounded by the remaining deadline) and lap again.
            pause = self.breaker_cooldown
            if overall_deadline is not None:
                remaining = overall_deadline - self._clock()
                if remaining <= 0:
                    return None, primary, failovers
                pause = min(pause, remaining)
            self._sleep(max(pause, 0.05))

    # -- the fan-out ------------------------------------------------------

    def run(self) -> int:
        started = self._clock()
        overall_deadline = (
            None if self.deadline is None else started + self.deadline
        )
        fingerprint = salt_fingerprint(self.salt.encode("utf-8"))

        skipped: List[str] = []
        todo: List[str] = []
        if self.manifest_path is not None:
            if self.resume:
                self.manifest = ResumeManifest.load(
                    self.manifest_path, fingerprint, self._suffix()
                )
                for name in sorted(self.configs):
                    if self.manifest.completed(name, self.out_paths[name]):
                        skipped.append(name)
                    else:
                        todo.append(name)
                self.manifest.open_append(fresh=False)
            else:
                self.manifest = ResumeManifest(
                    self.manifest_path, fingerprint, self._suffix()
                )
                self.manifest.open_append(fresh=True)
                todo = sorted(self.configs)
        else:
            todo = sorted(self.configs)
        if skipped:
            self._log(
                "resume: {} of {} files already complete (digests "
                "verified); re-driving {}".format(
                    len(skipped), len(self.configs), len(todo)
                )
            )

        shard_urls = self._discover_shards()
        self._open_sessions(shard_urls)

        results: Dict[str, Dict] = {}
        quarantined: Dict[str, str] = {}
        failovers_total = 0
        work: "queue.Queue[str]" = queue.Queue()
        for name in todo:
            work.put(name)
        errors: List[BaseException] = []

        def worker() -> None:
            nonlocal failovers_total
            while not self._stop.is_set():
                try:
                    name = work.get_nowait()
                except queue.Empty:
                    return
                try:
                    result, shard, failovers = self._drive_file(
                        name, overall_deadline
                    )
                    with self._lock:
                        failovers_total += failovers
                    if result is None:
                        self._record(name, None, quarantined, results)
                    else:
                        self._record(name, result, quarantined, results)
                except CorpusAborted:
                    return
                except BaseException as exc:  # surfaced after the join
                    with self._lock:
                        errors.append(exc)
                    self._stop.set()
                    return

        threads = [
            threading.Thread(
                target=worker, name="repro-corpus-{}".format(i), daemon=True
            )
            for i in range(min(self.jobs, max(len(todo), 1)))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        aborted = self._stop.is_set() and not errors
        if errors:
            raise errors[0]

        client_retries = sum(client.retries for client in self.clients)
        client_resumes = sum(client.resumes for client in self.clients)
        leaks = any(
            len(result["report"]["flags"]) > 0 for result in results.values()
        )
        self.report = {
            "files_total": len(self.configs),
            "files_driven": len(results) + len(quarantined),
            "files_ok": sum(
                1 for r in results.values() if r["status"] == "ok"
            ),
            "files_fail_closed": sum(
                1 for r in results.values() if r["status"] != "ok"
            ),
            "files_skipped_resume": len(skipped),
            "files_quarantined": sorted(quarantined),
            "quarantine_reasons": quarantined,
            "failovers": failovers_total,
            "client_retries": client_retries,
            "client_resumes": client_resumes,
            "failovers_total": failovers_total
            + client_retries
            + client_resumes,
            "shards": len(self.clients),
            "breakers": {
                str(i): breaker.state
                for i, breaker in enumerate(self.breakers)
            },
            "leaks": leaks,
            "aborted": aborted,
            "elapsed": self._clock() - started,
        }
        if aborted:
            raise CorpusAborted(
                "corpus run interrupted after {} file(s); re-run with "
                "--resume to continue".format(self._completed_count)
            )
        if quarantined:
            return EXIT_PARTIAL_CORPUS
        if leaks:
            return EXIT_LEAKS
        return EXIT_OK

    def _record(
        self,
        name: str,
        result: Optional[Dict],
        quarantined: Dict[str, str],
        results: Dict[str, Dict],
    ) -> None:
        """Write one file's outcome (output + manifest line), or
        quarantine it; then honor the abort-after test seam."""
        if result is None:
            with self._lock:
                quarantined[name] = (
                    "every shard exhausted (deadline or failover budget "
                    "spent); output withheld"
                )
            if self.manifest is not None:
                self.manifest.record(
                    name, "", str(self.out_paths[name]), "quarantined"
                )
            self._log(
                "quarantined: {} (no shard could complete it)".format(name),
            )
        else:
            out_path = Path(self.out_paths[name])
            try:
                digest = atomic_write_text(out_path, result["text"])
            except OSError as exc:
                with self._lock:
                    quarantined[name] = "output write failed ({})".format(
                        type(exc).__name__
                    )
                if self.manifest is not None:
                    self.manifest.record(
                        name, "", str(out_path), "quarantined"
                    )
                return
            with self._lock:
                results[name] = result
            if self.manifest is not None:
                self.manifest.record(
                    name, digest, str(out_path), result["status"]
                )
        with self._lock:
            self._completed_count += 1
            if (
                self._abort_after is not None
                and self._completed_count >= self._abort_after
            ):
                self._stop.set()

    def _suffix(self) -> str:
        """The output suffix, inferred from one resolved out path."""
        for name, path in self.out_paths.items():
            tail = Path(path).name
            base = Path(name).name
            if tail.startswith(base):
                return tail[len(base):]
        return ""

    def close(self, delete_sessions: bool = True) -> None:
        for index, client in enumerate(self.clients):
            if delete_sessions and index < len(self.session_ids):
                try:
                    client.delete_session(self.session_ids[index])
                except Exception:
                    pass
            try:
                client.close()
            except Exception:
                pass
        if self.manifest is not None:
            self.manifest.close()


def _abort_after_from_env() -> Optional[int]:
    raw = os.environ.get(ABORT_AFTER_ENV)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def run_corpus_main(args, configs, out_paths) -> int:
    """The ``submit --corpus`` entry point (called from service.cli).

    Returns a process exit code; prints progress like the rest of the
    CLI.  The resume manifest lives in ``--out-dir`` (required for
    corpus mode, so interrupted and resumed runs agree on where outputs
    and the manifest live).
    """
    manifest_path = Path(args.out_dir) / MANIFEST_NAME
    runner = CorpusRunner(
        base_url=args.server,
        unix_socket=args.unix_socket,
        salt=args.salt,
        configs=configs,
        out_paths=out_paths,
        jobs=args.corpus_jobs,
        deadline=args.deadline,
        resume=args.resume,
        manifest_path=manifest_path,
        retries=args.retries,
        retry_base_delay=args.retry_base_delay,
    )
    try:
        try:
            code = runner.run()
        except KeyboardInterrupt:
            raise CorpusAborted("interrupted; re-run with --resume")
        report = runner.report
        print(
            "corpus: {} files over {} shard(s); {} ok, {} fail-closed, "
            "{} skipped (resume), {} quarantined; failovers_total={} "
            "(re-drives={}, client retries={}, resumes={})".format(
                report["files_total"],
                report["shards"],
                report["files_ok"],
                report["files_fail_closed"],
                report["files_skipped_resume"],
                len(report["files_quarantined"]),
                report["failovers_total"],
                report["failovers"],
                report["client_retries"],
                report["client_resumes"],
            )
        )
        if args.corpus_report:
            report_path = Path(args.corpus_report)
            atomic_write_text(
                report_path,
                json.dumps(report, indent=2, sort_keys=True) + "\n",
            )
            print("wrote corpus report {}".format(report_path))
        return code
    except ManifestError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return EXIT_STATE_ERROR
    except CorpusAborted as exc:
        print("interrupted: {}".format(exc), file=sys.stderr)
        return 130
    except ServiceClientError as exc:
        print(
            "error: service request failed: {}".format(exc), file=sys.stderr
        )
        return EXIT_SERVICE_ERROR
    except (ConnectionError, OSError) as exc:
        print(
            "error: cannot reach the service ({})".format(
                type(exc).__name__
            ),
            file=sys.stderr,
        )
        return EXIT_SERVICE_ERROR
    finally:
        runner.close()
