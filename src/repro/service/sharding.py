"""Session sharding for the pre-fork service tier.

With ``repro-anonymize serve --workers N`` (N >= 2) the daemon runs as
N pre-forked worker processes behind one listening socket.  Every
session belongs to exactly one worker — its *shard* — chosen by a
stable hash of the session id:

* **Stable** means the assignment survives restarts, respawns, and
  process boundaries: it is a keyed-nothing SHA-256 of the id, never
  Python's salted ``hash()``.  The same id maps to the same shard in
  every worker, in the supervisor, in the client, and in next week's
  daemon, as long as the worker count is unchanged.
* **Exclusive** means only the owning worker touches the shard's
  journals and snapshots: worker *i* runs its own
  :class:`~repro.service.journal.SessionStore` rooted at
  ``state-dir/shard-NN/``, so recovery after a crash is per-shard — a
  kill of one worker replays one shard's journals and nobody else's.

Because the assignment is a pure function of (id, worker count), the
worker count is part of the durable contract: ``topology.json`` in the
state dir records it, and a daemon started with a different ``--workers``
over the same state dir refuses to serve rather than silently orphan
every session into the wrong shard.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional, Tuple

__all__ = [
    "ShardInfo",
    "TOPOLOGY_NAME",
    "TopologyError",
    "check_topology",
    "shard_for",
    "shard_state_dir",
    "write_topology",
]

TOPOLOGY_NAME = "topology.json"
TOPOLOGY_FORMAT_VERSION = 1


class TopologyError(RuntimeError):
    """The state dir was written under a different shard topology."""


def shard_for(session_id: str, shard_count: int) -> int:
    """The shard owning *session_id*, stable across processes/restarts.

    SHA-256 keyed by nothing: the mapping must agree between workers,
    the supervisor, clients, and future daemon runs, so Python's
    per-process salted ``hash()`` is exactly what this must not be.
    """
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    digest = hashlib.sha256(session_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shard_count


class ShardInfo:
    """One worker's view of the shard topology.

    ``addresses[i]`` is shard *i*'s direct base URL (the per-worker
    listener used for redirects, metrics aggregation, and targeted
    drills); ``index`` is this worker's own shard.
    """

    __slots__ = ("index", "count", "addresses")

    def __init__(self, index: int, count: int, addresses: Tuple[str, ...]):
        if not (0 <= index < count):
            raise ValueError("shard index {} out of range".format(index))
        if len(addresses) != count:
            raise ValueError(
                "expected {} shard addresses, got {}".format(
                    count, len(addresses)
                )
            )
        self.index = index
        self.count = count
        self.addresses = tuple(addresses)

    def owns(self, session_id: str) -> bool:
        return shard_for(session_id, self.count) == self.index

    def address_for(self, session_id: str) -> str:
        return self.addresses[shard_for(session_id, self.count)]

    @property
    def own_address(self) -> str:
        return self.addresses[self.index]

    def table(self) -> Dict[str, str]:
        """JSON-able ``{shard: direct URL}`` map (healthz exposes it)."""
        return {str(i): addr for i, addr in enumerate(self.addresses)}


def shard_state_dir(state_dir, index: int) -> Path:
    """Worker *index*'s private state root under the shared state dir."""
    return Path(state_dir) / "shard-{:02d}".format(index)


def write_topology(state_dir, workers: int) -> None:
    """Record the shard topology (atomic tmp+rename, like all state)."""
    from repro.core.runner import atomic_write_text

    path = Path(state_dir) / TOPOLOGY_NAME
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(
        path,
        json.dumps(
            {
                "format_version": TOPOLOGY_FORMAT_VERSION,
                "workers": workers,
            },
            indent=2,
            sort_keys=True,
        ),
        crash_scope="topology",
    )


def check_topology(state_dir, workers: int) -> Optional[int]:
    """Refuse a state dir written under a different worker count.

    Returns the recorded worker count (or None if the dir is fresh).
    Raises :class:`TopologyError` when serving would mis-shard: the
    recorded count differs, or a multi-worker start finds the legacy
    single-process ``sessions/`` layout with history in it.
    """
    root = Path(state_dir)
    path = root / TOPOLOGY_NAME
    recorded: Optional[int] = None
    if path.exists():
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            recorded = int(document["workers"])
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise TopologyError(
                "cannot read shard topology {}: {}".format(
                    path, type(exc).__name__
                )
            )
        if recorded != workers:
            raise TopologyError(
                "state dir {} was written by a {}-worker daemon; starting "
                "with --workers {} would re-shard every session into the "
                "wrong journal — use --workers {} or a fresh state "
                "dir".format(root, recorded, workers, recorded)
            )
    elif workers > 1:
        legacy = root / "sessions"
        if legacy.is_dir() and any(legacy.iterdir()):
            raise TopologyError(
                "state dir {} holds single-process session history but no "
                "topology.json; a --workers {} daemon cannot adopt it — "
                "drain it with --workers 1 or point at a fresh state "
                "dir".format(root, workers)
            )
    return recorded
