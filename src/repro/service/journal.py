"""Durable session state: write-ahead journal, snapshots, recovery.

The paper's consistency contract — the same token or prefix maps to the
same output across an entire corpus and across publication rounds — only
holds while the mapping state survives.  PR 3's daemon held that state
in memory, so a crash mid-corpus silently destroyed the guarantee.  This
module makes sessions durable under a ``--state-dir``::

    state-dir/
      sessions/
        <session-id>/
          meta.json        # fingerprint + options (never the salt)
          snapshot.json    # periodic full state, written atomically
          journal.jsonl    # append-only per-request state deltas
        <session-id>.quarantined/   # corrupt history, set aside

**Write discipline.**  Every mutating request (anonymize, freeze, state
import) appends one journal record — the mapping-state *delta* plus the
request's result — and the record is flushed and ``fsync``'d *before*
the response is sent.  An acknowledged request is therefore always on
disk; an unacknowledged one may at worst leave a torn final record.
Every ``snapshot_every`` records the full state is written to
``snapshot.json`` via the same tmp+rename atomic writer as the batch
runner, and the journal is rotated.

**Recovery.**  At startup the daemon scans the state dir and verifies
each session's history: checksummed records, contiguous sequence
numbers, consistent salt fingerprints.  A torn *final* record is the
expected crash artifact — its request was never acknowledged (the fsync
happens before the response), so it is discarded and counted.  Anything
else — a corrupt record mid-journal, a sequence gap, a fingerprint
mismatch between files — quarantines the whole session directory
fail-closed: the daemon refuses to guess state it cannot prove, and the
session cannot be resumed until an operator inspects the quarantine.

**The salt is never stored.**  ``meta.json`` holds only the keyed
fingerprint (:func:`repro.core.runner.salt_fingerprint`).  A recovered
session is *resumable*, not live: the owner must present the salt again
(``POST /sessions`` with ``{"salt": ..., "resume": "<id>"}``), the
daemon verifies the fingerprint, and only then replays
journal-over-snapshot into a fresh anonymizer.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.crashpoints import crash_here, would_crash
from repro.core.faults import FaultPlan
from repro.core.runner import atomic_write_text, salt_fingerprint
from repro.core.state import (
    StateError,
    apply_state_delta,
    import_state,
)

__all__ = [
    "JOURNAL_FORMAT_VERSION",
    "JournalCorruptError",
    "JournalDiskError",
    "JournalError",
    "RecoveredSession",
    "RecoveryError",
    "RecoverySummary",
    "SessionJournal",
    "SessionStore",
    "replay_into",
]

JOURNAL_FORMAT_VERSION = 1

META_NAME = "meta.json"
SNAPSHOT_NAME = "snapshot.json"
JOURNAL_NAME = "journal.jsonl"
QUARANTINE_SUFFIX = ".quarantined"


class JournalError(RuntimeError):
    """A journal operation failed (append, snapshot, or scan)."""


class JournalCorruptError(JournalError):
    """A session's durable history cannot be trusted (checksum or
    sequence violation anywhere before the final record, or inconsistent
    metadata).  Fail-closed: the session is quarantined, never guessed."""


class RecoveryError(JournalError):
    """A resume request cannot be honored (wrong salt, quarantined or
    unknown history).  Maps to a 409 at the HTTP layer, never a 500."""


class _CreationArtifact(Exception):
    """Internal: a session directory is crash-mid-create debris (no
    meta, no records, no snapshot) and may be removed, not quarantined."""


class JournalDiskError(JournalError):
    """A journal or snapshot write failed at the disk level (ENOSPC,
    EIO, read-only filesystem).  The append was rolled back cleanly —
    no torn tail, no acknowledged-but-lost record — so the condition is
    *transient*: the session parks read-only (507 + Retry-After at the
    HTTP layer) and the next successful append clears it."""


def _record_line(record: Dict) -> bytes:
    """One journal line: ``<sha256[:12]> <payload>\\n``.

    The checksum covers the exact payload bytes, so recovery can tell a
    torn append (truncated line) and a corrupted record (checksum
    mismatch) apart from a valid one without trusting JSON error
    positions.
    """
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    data = payload.encode("utf-8")
    checksum = hashlib.sha256(data).hexdigest()[:12]
    return checksum.encode("ascii") + b" " + data + b"\n"


def _parse_line(line: bytes) -> Dict:
    """Decode one complete journal line; raise ``ValueError`` if invalid."""
    if not line.endswith(b"\n"):
        raise ValueError("unterminated record")
    checksum, _, payload = line.rstrip(b"\n").partition(b" ")
    if hashlib.sha256(payload).hexdigest()[:12] != checksum.decode("ascii", "replace"):
        raise ValueError("checksum mismatch")
    record = json.loads(payload.decode("utf-8"))
    if not isinstance(record, dict) or not isinstance(record.get("seq"), int):
        raise ValueError("record is not an object with an integer seq")
    return record


class SessionJournal:
    """The append side of one session's durable history."""

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.journal_path = self.directory / JOURNAL_NAME
        self.snapshot_path = self.directory / SNAPSHOT_NAME
        self.meta_path = self.directory / META_NAME
        self._handle = None
        self._broken = False
        #: Last sequence number on disk (journal or snapshot).
        self.seq = 0
        #: Appends since the last snapshot (drives rotation).
        self.appended_since_snapshot = 0

    @classmethod
    def create(
        cls,
        directory: Path,
        session_id: str,
        fingerprint: str,
        options: Dict,
        active_plugins: Optional[List[str]] = None,
    ) -> "SessionJournal":
        """Create the directory + meta for a brand-new session."""
        journal = cls(directory)
        journal.directory.mkdir(parents=True, exist_ok=True)
        meta = {
            "format_version": JOURNAL_FORMAT_VERSION,
            "session_id": session_id,
            "salt_fingerprint": fingerprint,
            "options": options,
        }
        if active_plugins is not None:
            # Which recognizer-plugin families the session's rule
            # pipeline was composed from; resume refuses a mismatch.
            meta["active_plugins"] = sorted(active_plugins)
        atomic_write_text(
            journal.meta_path,
            json.dumps(meta, indent=2, sort_keys=True),
            crash_scope="session.meta",
        )
        journal._open(truncate_to=0)
        return journal

    def _open(self, truncate_to: Optional[int] = None) -> None:
        self.close()
        self._handle = open(self.journal_path, "ab")
        if truncate_to is not None and self._handle.tell() != truncate_to:
            # Resume over a torn tail: drop the unacknowledged bytes.
            self._handle.truncate(truncate_to)
            self._handle.seek(truncate_to)

    def resume_appending(self, valid_length: int, seq: int) -> None:
        """Reopen for appends after recovery, truncating any torn tail."""
        self._open(truncate_to=valid_length)
        self.seq = seq

    def append(
        self,
        record: Dict,
        fault_plan: Optional[FaultPlan] = None,
        fault_source: str = "",
    ) -> int:
        """Durably append one record; returns its sequence number.

        The record is written, flushed, and ``fsync``'d before this
        returns — callers respond to the client only afterwards, which
        is what makes a torn trailing record safely discardable (its
        request was never acknowledged).
        """
        if self._broken:
            # A torn append left unacknowledged bytes at the tail; any
            # further append would bury them mid-journal and turn a
            # recoverable crash artifact into unrecoverable corruption.
            raise JournalError(
                "journal has a torn tail; restart the daemon to recover"
            )
        if self._handle is None:
            self._open()
        self.seq += 1
        record = dict(record)
        record["seq"] = self.seq
        line = _record_line(record)
        crash_here("journal.append.pre-write")
        # Each fault trigger is consulted exactly once per append: under
        # the chaos scheduler every call burns a PRNG draw, so asking the
        # same question twice could get two different answers.
        kill = fault_plan is not None and fault_plan.should_kill_journal(
            fault_source
        )
        torn = (
            not kill
            and fault_plan is not None
            and fault_plan.torn_append_once(fault_source)
        )
        if kill or torn or would_crash("journal.append.torn"):
            # Torn append: half the record reaches disk, never the rest.
            self._handle.write(line[: max(1, len(line) // 2)])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            crash_here("journal.append.torn")
            if kill:
                os._exit(3)  # simulated crash mid-journal-write
            self.seq -= 1
            self._broken = True
            raise JournalError(
                "injected torn journal append for {}".format(fault_source)
            )
        offset = self._handle.tell()
        try:
            if fault_plan is not None and fault_plan.enospc_append_once(
                fault_source
            ):
                raise OSError(errno.ENOSPC, "injected: no space left on device")
            self._handle.write(line)
            self._handle.flush()
            crash_here("journal.append.pre-fsync")
            os.fsync(self._handle.fileno())
            crash_here("journal.append.post-fsync")
        except OSError as exc:
            # Full or failing disk.  Roll the append back cleanly: the
            # write may have landed partially in the OS buffer, so
            # truncate back to the pre-append offset (truncation frees
            # blocks, which works even when the disk is full).  The
            # journal then has *no* trace of this record — the request
            # was never acknowledged — and the session can keep serving
            # once the disk recovers.
            self.seq -= 1
            try:
                self._handle.truncate(offset)
                self._handle.seek(offset)
            except OSError:
                # Cannot even truncate: the tail is untrustworthy.  Park
                # the journal fail-closed; restart recovery will discard
                # the torn tail like any other crash artifact.
                self._broken = True
            raise JournalDiskError(
                "journal append failed at the disk level ({}: {}); the "
                "record was rolled back and the session is parked until "
                "writes succeed again".format(type(exc).__name__, exc)
            ) from exc
        self.appended_since_snapshot += 1
        return self.seq

    def write_snapshot(
        self,
        document: Dict,
        fault_plan: Optional[FaultPlan] = None,
        fault_source: str = "snapshot",
    ) -> None:
        """Atomically persist a full-state snapshot and rotate the journal.

        The snapshot lands via tmp+rename (the batch runner's write
        discipline), then the journal is truncated.  A crash between the
        two leaves journal records with ``seq <= snapshot.seq``, which
        replay simply skips — never a window where state could be lost.

        A disk-level failure raises :class:`JournalDiskError`; the
        journal itself is untouched (every record is already committed),
        so the caller may treat it as non-fatal and retry at the next
        snapshot boundary.
        """
        document = dict(document)
        document["format_version"] = JOURNAL_FORMAT_VERSION
        document["seq"] = self.seq
        try:
            if fault_plan is not None and fault_plan.snapshot_eio_once(
                fault_source
            ):
                raise OSError(errno.EIO, "injected: input/output error")
            atomic_write_text(
                self.snapshot_path,
                json.dumps(document, sort_keys=True),
                crash_scope="snapshot",
            )
        except OSError as exc:
            raise JournalDiskError(
                "snapshot write failed at the disk level ({}: {}); the "
                "journal is intact, rotation skipped".format(
                    type(exc).__name__, exc
                )
            ) from exc
        crash_here("journal.rotate.pre-truncate")
        self._open(truncate_to=None)
        self._handle.truncate(0)
        self._handle.seek(0)
        os.fsync(self._handle.fileno())
        crash_here("journal.rotate.post-truncate")
        self.appended_since_snapshot = 0

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None


class RecoveredSession:
    """One session's verified durable history, ready to resume."""

    def __init__(
        self,
        session_id: str,
        directory: Path,
        meta: Dict,
        snapshot: Optional[Dict],
        records: List[Dict],
        valid_length: int,
        torn_discarded: int,
    ):
        self.session_id = session_id
        self.directory = directory
        self.meta = meta
        self.snapshot = snapshot
        self.records = records
        #: Byte length of the valid journal prefix (appends resume here).
        self.valid_length = valid_length
        self.torn_discarded = torn_discarded

    @property
    def salt_fingerprint(self) -> str:
        return self.meta.get("salt_fingerprint", "")

    @property
    def options(self) -> Dict:
        options = self.meta.get("options")
        return options if isinstance(options, dict) else {}

    @property
    def last_seq(self) -> int:
        if self.records:
            return self.records[-1]["seq"]
        if self.snapshot is not None:
            return int(self.snapshot.get("seq", 0))
        return 0


class RecoverySummary:
    """What a startup scan of the state dir found."""

    def __init__(self):
        self.recoverable: Dict[str, RecoveredSession] = {}
        self.quarantined: Dict[str, str] = {}
        self.torn_discarded = 0
        #: Directories discarded as crash-mid-create debris (no meta, no
        #: records, no snapshot — nothing was ever acknowledged).
        self.artifacts_discarded = 0

    def describe(self) -> str:
        return (
            "{} resumable session(s), {} quarantined, "
            "{} torn record(s) discarded".format(
                len(self.recoverable),
                len(self.quarantined),
                self.torn_discarded,
            )
        )


def _scan_journal(path: Path) -> Tuple[List[Dict], int, int]:
    """Verify a journal file; return (records, valid_length, torn).

    Raises :class:`JournalCorruptError` for anything that cannot be
    explained by a single crash mid-append: a bad record anywhere before
    the final one, or non-contiguous sequence numbers.
    """
    if not path.exists():
        return [], 0, 0
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise JournalCorruptError(
            "journal {} is unreadable ({}) — history cannot be "
            "verified".format(path, type(exc).__name__)
        ) from exc
    records: List[Dict] = []
    offset = 0
    torn = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:
            # Unterminated final line: the canonical torn append.
            torn = 1
            break
        line = data[offset : newline + 1]
        try:
            record = _parse_line(line)
        except ValueError as exc:
            if newline + 1 >= len(data):
                # Final record, terminated but invalid: a torn write that
                # happened to include the newline.  Still unacknowledged.
                torn = 1
                break
            raise JournalCorruptError(
                "corrupt journal record at byte {} of {} ({}) — history "
                "cannot be trusted".format(offset, path, exc)
            )
        if records and record["seq"] != records[-1]["seq"] + 1:
            raise JournalCorruptError(
                "journal {} sequence jumps from {} to {} — records are "
                "missing".format(path, records[-1]["seq"], record["seq"])
            )
        records.append(record)
        offset = newline + 1
    return records, offset, torn


def _load_json(path: Path, what: str) -> Optional[Dict]:
    if not path.exists():
        return None
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise JournalCorruptError(
            "{} {} is unreadable or corrupt ({})".format(
                what, path, type(exc).__name__
            )
        )
    if not isinstance(document, dict):
        raise JournalCorruptError(
            "{} {} is not a JSON object".format(what, path)
        )
    return document


class SessionStore:
    """All durable sessions under one ``--state-dir``."""

    def __init__(self, state_dir, snapshot_every: int = 64):
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.state_dir = Path(state_dir)
        self.sessions_dir = self.state_dir / "sessions"
        self.snapshot_every = snapshot_every
        self.summary = RecoverySummary()

    # -- lifecycle -------------------------------------------------------

    def create_journal(
        self,
        session_id: str,
        fingerprint: str,
        options: Dict,
        active_plugins: Optional[List[str]] = None,
    ) -> SessionJournal:
        """The journal for a brand-new session (meta written, fsync'd)."""
        return SessionJournal.create(
            self.sessions_dir / session_id,
            session_id,
            fingerprint,
            options,
            active_plugins=active_plugins,
        )

    def discard(self, session_id: str) -> None:
        """Remove a session's durable history (used by DELETE)."""
        self.summary.recoverable.pop(session_id, None)
        directory = self.sessions_dir / session_id
        if directory.exists():
            shutil.rmtree(directory, ignore_errors=True)

    # -- recovery --------------------------------------------------------

    def recover(self) -> RecoverySummary:
        """Scan the state dir; verify, index, or quarantine every session.

        Raises :class:`JournalError` only if the state dir itself cannot
        be read or created — per-session corruption quarantines that
        session and the scan continues.
        """
        summary = RecoverySummary()
        try:
            self.sessions_dir.mkdir(parents=True, exist_ok=True)
            entries = sorted(self.sessions_dir.iterdir())
        except OSError as exc:
            raise JournalError(
                "cannot use state dir {}: {}".format(self.state_dir, exc)
            ) from exc
        for directory in entries:
            if not directory.is_dir() or directory.name.endswith(
                QUARANTINE_SUFFIX
            ) or QUARANTINE_SUFFIX + "." in directory.name:
                continue
            session_id = directory.name
            try:
                recovered = self._scan_session(session_id, directory)
            except _CreationArtifact:
                shutil.rmtree(directory, ignore_errors=True)
                summary.artifacts_discarded += 1
                continue
            except JournalError as exc:
                try:
                    quarantined = self._quarantine(directory)
                except OSError as move_exc:
                    # Read-only or full state dir: the rename itself
                    # failed.  Quarantine *in place* — record the reason
                    # so the session is not resumable and keep scanning;
                    # a bad disk must not take down the healthy sessions.
                    summary.quarantined[session_id] = (
                        "{} (quarantined in place; move failed: "
                        "{})".format(exc, move_exc)
                    )
                    continue
                summary.quarantined[session_id] = "{} (moved to {})".format(
                    exc, quarantined.name
                )
                continue
            summary.recoverable[session_id] = recovered
            summary.torn_discarded += recovered.torn_discarded
        self.summary = summary
        return summary

    def _scan_session(self, session_id: str, directory: Path) -> RecoveredSession:
        meta = _load_json(directory / META_NAME, "session meta")
        if meta is None:
            if not (directory / SNAPSHOT_NAME).exists():
                records, _, _ = _scan_journal(directory / JOURNAL_NAME)
                if not records:
                    # A crash mid-create (before meta.json was renamed
                    # into place) leaves a directory holding at most tmp
                    # debris.  Nothing in it was ever acknowledged, so
                    # it is a discardable crash artifact, not corruption.
                    raise _CreationArtifact(session_id)
            raise JournalCorruptError(
                "session {} has no meta.json".format(session_id)
            )
        if meta.get("format_version") != JOURNAL_FORMAT_VERSION:
            raise JournalCorruptError(
                "session {} journal format_version {!r} is unsupported "
                "(expected {})".format(
                    session_id, meta.get("format_version"), JOURNAL_FORMAT_VERSION
                )
            )
        fingerprint = meta.get("salt_fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            raise JournalCorruptError(
                "session {} meta has no salt fingerprint".format(session_id)
            )
        snapshot = _load_json(directory / SNAPSHOT_NAME, "session snapshot")
        if snapshot is not None and snapshot.get("salt_fingerprint") != fingerprint:
            raise JournalCorruptError(
                "session {} snapshot fingerprint disagrees with meta — "
                "files from different sessions mixed in one "
                "directory".format(session_id)
            )
        records, valid_length, torn = _scan_journal(directory / JOURNAL_NAME)
        snapshot_seq = int(snapshot.get("seq", 0)) if snapshot else 0
        live = [r for r in records if r["seq"] > snapshot_seq]
        if live and live[0]["seq"] != snapshot_seq + 1:
            raise JournalCorruptError(
                "session {} journal starts at seq {} but the snapshot "
                "covers only up to {} — records are missing".format(
                    session_id, live[0]["seq"], snapshot_seq
                )
            )
        return RecoveredSession(
            session_id, directory, meta, snapshot, live, valid_length, torn
        )

    def _quarantine(self, directory: Path) -> Path:
        target = directory.with_name(directory.name + QUARANTINE_SUFFIX)
        counter = 0
        while target.exists():
            counter += 1
            target = directory.with_name(
                "{}{}.{}".format(directory.name, QUARANTINE_SUFFIX, counter)
            )
        os.replace(directory, target)
        return target

    # -- lookups ---------------------------------------------------------

    def recoverable(self, session_id: str) -> Optional[RecoveredSession]:
        return self.summary.recoverable.get(session_id)

    def is_recoverable(self, session_id: str) -> bool:
        return session_id in self.summary.recoverable

    def quarantine_reason(self, session_id: str) -> Optional[str]:
        return self.summary.quarantined.get(session_id)


def replay_into(anonymizer, recovered: RecoveredSession) -> Dict:
    """Rebuild a session's state: snapshot first, then journal deltas.

    The anonymizer must have been constructed with the owner's salt; the
    keyed fingerprint is verified before any mutation and a mismatch is
    fail-closed (:class:`RecoveryError`).  Returns the replay outcome::

        {"frozen": bool, "freeze_stats": dict|None,
         "committed": {idempotency_key: result}, "seq": int,
         "requests_replayed": int}
    """
    if salt_fingerprint(anonymizer.config.salt) != recovered.salt_fingerprint:
        raise RecoveryError(
            "salt fingerprint mismatch for session {}: the presented salt "
            "is not the one this session's history was written under — "
            "refusing to resume".format(recovered.session_id)
        )
    if "active_plugins" in recovered.meta:
        stored = sorted(str(f) for f in recovered.meta["active_plugins"] or [])
        active = sorted(getattr(anonymizer, "active_plugin_families", ()))
        if stored != active:
            raise RecoveryError(
                "session {} was frozen under plugins {} but this daemon "
                "composed {} — mapping state from one rule set must not "
                "serve another; refusing to resume".format(
                    recovered.session_id, stored or "[]", active or "[]"
                )
            )
    frozen = False
    freeze_stats: Optional[Dict] = None
    committed: Dict[str, Dict] = {}
    try:
        if recovered.snapshot is not None:
            import_state(anonymizer, recovered.snapshot["state"])
            frozen = bool(recovered.snapshot.get("frozen"))
            freeze_stats = recovered.snapshot.get("freeze_stats")
            snapshot_committed = recovered.snapshot.get("committed")
            if isinstance(snapshot_committed, dict):
                committed.update(snapshot_committed)
        requests_replayed = 0
        for record in recovered.records:
            op = record.get("op")
            if op == "anonymize":
                apply_state_delta(anonymizer, record["delta"])
                key = record.get("key")
                if key:
                    committed[key] = record["result"]
                requests_replayed += 1
            elif op == "freeze":
                apply_state_delta(anonymizer, record["delta"])
                anonymizer.mark_frozen()
                frozen = True
                freeze_stats = record.get("stats")
            elif op == "import":
                import_state(anonymizer, record["state"])
            else:
                raise RecoveryError(
                    "session {} journal contains unknown op {!r} — written "
                    "by a newer daemon?".format(recovered.session_id, op)
                )
    except (StateError, KeyError, TypeError) as exc:
        raise RecoveryError(
            "session {} journal replay failed ({}: {}) — refusing to "
            "serve guessed state".format(
                recovered.session_id, type(exc).__name__, exc
            )
        ) from exc
    if frozen:
        anonymizer.mark_frozen()
    return {
        "frozen": frozen,
        "freeze_stats": freeze_stats,
        "committed": committed,
        "seq": recovered.last_seq,
        "requests_replayed": requests_replayed,
    }
