"""Hung-worker detection: heartbeats and respawn counters over mmap.

A worker that *dies* is visible to the supervisor the moment
:func:`os.wait` returns; a worker that *hangs* (a wedged serve loop, a
runaway C call holding the GIL, a deadlock) keeps its process table
entry, keeps its listening sockets, and silently stops answering — the
worst failure mode for a service that promises every acknowledged
request is durable, because clients just see timeouts while the
supervisor sees nothing.

:class:`WorkerStatusBoard` closes that gap with one anonymous shared
``mmap`` created by the supervisor *before* forking, so every worker —
including respawned ones, which are forked from the same parent —
inherits the same physical pages:

* each worker's serve loops refresh a per-shard **heartbeat** slot with
  ``time.monotonic()`` (``CLOCK_MONOTONIC`` is system-wide on Linux, so
  parent and child timestamps compare directly);
* the supervisor's watchdog thread scans the slots and SIGKILLs any
  worker whose heartbeat is older than ``--watchdog-timeout`` — the
  normal ``os.wait`` respawn path then revives it under the existing
  budget;
* the supervisor records **respawn** and **hung** counts per shard in
  the same board, which is how the numbers reach worker-served
  ``/metrics`` (``repro_worker_respawns_total{shard}``,
  ``repro_worker_hung_total{shard}``) and ``/healthz`` (remaining
  respawn budget) without any extra wire protocol.

Each slot is three independently-written 8-byte fields (heartbeat
float, respawns, hung).  Every field has exactly one writer — the
worker owns its heartbeat, the supervisor owns the counters — and
8-byte aligned stores are not torn on the platforms this runs on, so no
cross-process lock is needed (a stale read costs one watchdog interval,
nothing more).
"""

from __future__ import annotations

import mmap
import struct
import time
from typing import Optional

__all__ = ["SLOT_BYTES", "WorkerStatusBoard"]

#: Per-shard slot layout: heartbeat (f64) | respawns (u64) | hung (u64).
SLOT_BYTES = 24
_HEARTBEAT = struct.Struct("<d")
_COUNTER = struct.Struct("<Q")


class WorkerStatusBoard:
    """Shared per-shard worker status, inherited across fork."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._map = mmap.mmap(-1, workers * SLOT_BYTES)

    def _check(self, shard: int) -> int:
        if not 0 <= shard < self.workers:
            raise IndexError("shard {} out of range".format(shard))
        return shard * SLOT_BYTES

    # -- heartbeat (written by the worker's serve loops) -----------------

    def beat(self, shard: int, now: Optional[float] = None) -> None:
        base = self._check(shard)
        _HEARTBEAT.pack_into(
            self._map, base, time.monotonic() if now is None else now
        )

    def heartbeat(self, shard: int) -> float:
        """Last heartbeat (monotonic seconds); 0.0 if never beaten."""
        base = self._check(shard)
        return _HEARTBEAT.unpack_from(self._map, base)[0]

    def heartbeat_age(self, shard: int) -> Optional[float]:
        """Seconds since the last heartbeat, or None if never beaten."""
        beat = self.heartbeat(shard)
        if beat <= 0.0:
            return None
        return max(0.0, time.monotonic() - beat)

    # -- counters (written by the supervisor only) -----------------------

    def record_respawn(self, shard: int) -> None:
        base = self._check(shard) + 8
        count = _COUNTER.unpack_from(self._map, base)[0]
        _COUNTER.pack_into(self._map, base, count + 1)

    def respawns(self, shard: int) -> int:
        return _COUNTER.unpack_from(self._map, self._check(shard) + 8)[0]

    def record_hung(self, shard: int) -> None:
        base = self._check(shard) + 16
        count = _COUNTER.unpack_from(self._map, base)[0]
        _COUNTER.pack_into(self._map, base, count + 1)

    def hung(self, shard: int) -> int:
        return _COUNTER.unpack_from(self._map, self._check(shard) + 16)[0]

    def close(self) -> None:
        try:
            self._map.close()
        except (BufferError, ValueError):
            pass
