"""Stdlib client for the anonymization daemon.

Used by the ``repro-anonymize submit`` subcommand and the test suite;
kept dependency-free (:mod:`http.client` only) so anything that can run
the anonymizer can also talk to it.  Supports both transports:

    client = ServiceClient("http://127.0.0.1:8753")
    client = ServiceClient(unix_socket="/run/repro.sock")

    session = client.create_session("owner-secret")
    client.freeze(session["id"], {"rtr1.conf": text1, "rtr2.conf": text2})
    result = client.anonymize(session["id"], text1, source="rtr1.conf")
    result["text"]              # anonymized bytes
    result["report"]["flags"]   # leak-highlight lines for human review
    client.delete_session(session["id"])

``anonymize`` can also stream: pass ``chunks=<iterable of str>`` and the
body goes out chunked (``Transfer-Encoding: chunked``), so a corpus can
be piped through without materializing each file twice.

:class:`RetryingServiceClient` layers crash-safety on top: bounded
exponential backoff with jitter for transient failures (backpressure,
dropped connections, a daemon mid-restart), ``Retry-After`` honored,
an optional per-request deadline, idempotency keys derived from each
file's content digest (:mod:`repro.core.digests`) so a resubmission
after an ambiguous failure returns the daemon's journaled result, and
automatic session resume when a restarted daemon answers 404 with
``"recoverable": true``.
"""

from __future__ import annotations

import http.client
import json
import math
import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple
from urllib.parse import urlparse

from repro.core.digests import idempotency_key_for

__all__ = [
    "MAX_RETRY_AFTER",
    "RetryPolicy",
    "RetryingServiceClient",
    "ServiceClient",
    "ServiceClientError",
    "ServiceUnavailableError",
]

#: Cap on an honored ``Retry-After`` header, in seconds.  A malformed,
#: non-finite, negative, or absurdly large value (a buggy or hostile
#: server must not be able to park the client for an hour) is treated as
#: absent and the bounded backoff schedule applies instead.
MAX_RETRY_AFTER = 60.0


def _parse_retry_after(header: Optional[str]) -> Optional[float]:
    """A usable ``Retry-After`` value, or None to fall back to backoff."""
    if not header:
        return None
    try:
        value = float(header)
    except (TypeError, ValueError):
        # Includes the HTTP-date form, which this stdlib-only client
        # does not parse — backoff is a safe substitute.
        return None
    if not math.isfinite(value) or value < 0 or value > MAX_RETRY_AFTER:
        return None
    return value


class ServiceClientError(RuntimeError):
    """The daemon answered with an error status.

    ``retry_after`` carries the daemon's ``Retry-After`` header (seconds,
    or None); ``recoverable`` is True when a 404 body flagged the session
    as resumable from durable state.
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
        recoverable: bool = False,
    ):
        super().__init__("HTTP {}: {}".format(status, message))
        self.status = status
        self.message = message
        self.retry_after = retry_after
        self.recoverable = recoverable


class ServiceUnavailableError(ServiceClientError):
    """Backpressure: the daemon answered 429 or 503 (retryable)."""


class _UnixHTTPConnection(http.client.HTTPConnection):
    def __init__(self, socket_path: str, timeout: Optional[float] = None):
        super().__init__("localhost", timeout=timeout)
        self._socket_path = socket_path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._socket_path)
        self.sock = sock


class _StaleConnectionError(Exception):
    """A pooled keep-alive connection died between requests (internal)."""


class ServiceClient:
    """A keep-alive client with per-thread pooled connections.

    Each thread owns its connections (thread-safe by construction:
    concurrent callers never share a connection object), and each
    connection is reused across requests — against the threaded daemon
    this removes a TCP handshake per request; against the pre-fork
    daemon it additionally *pins* the thread to one worker, so a
    session created there never pays a redirect.

    Two sharding behaviors are built in:

    * A ``307`` answer (the request landed on a worker that does not own
      the session's shard) is followed once to the ``Location`` /
      ``X-Repro-Shard`` target, and the session → shard affinity is
      remembered so every later request for that session goes direct.
    * A reused connection that turns out to be stale (the daemon closed
      it while parked: drain, worker respawn, idle timeout) is replaced
      and the request replayed exactly once — only when the body is
      replayable bytes, never a consumed stream.
    """

    #: Failures that mean "the parked connection is gone", as opposed to
    #: "the daemon answered and then closed".
    _STALE_ERRORS = (
        http.client.RemoteDisconnected,
        ConnectionResetError,
        BrokenPipeError,
    )

    def __init__(
        self,
        base_url: Optional[str] = None,
        unix_socket: Optional[str] = None,
        timeout: float = 300.0,
    ):
        if (base_url is None) == (unix_socket is None):
            raise ValueError("pass exactly one of base_url or unix_socket")
        if base_url is not None and base_url.startswith("unix://"):
            unix_socket = base_url[len("unix://"):]
            base_url = None
        self._unix_socket = unix_socket
        self.timeout = timeout
        if base_url is not None:
            parsed = urlparse(base_url)
            if parsed.scheme != "http" or not parsed.hostname:
                raise ValueError(
                    "base_url must look like http://host:port, got "
                    "{!r}".format(base_url)
                )
            self._host = parsed.hostname
            self._port = parsed.port or 80
        else:
            self._host = self._port = None
        self._local = threading.local()
        #: session id -> (host, port) learned from 307 redirects; shared
        #: across threads (it is pure routing state, last-write-wins).
        self._affinity: Dict[str, Tuple[str, int]] = {}
        self._affinity_lock = threading.Lock()

    # -- the connection pool (per thread) --------------------------------

    def _pool(self) -> Dict:
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = self._local.pool = {}
        return pool

    def _checkout(self, target) -> Tuple[http.client.HTTPConnection, bool]:
        """A pooled connection for *target* and whether it is fresh."""
        pool = self._pool()
        connection = pool.get(target)
        if connection is not None:
            return connection, False
        if target[0] is None:
            connection = _UnixHTTPConnection(target[1], timeout=self.timeout)
        else:
            connection = http.client.HTTPConnection(
                target[0], target[1], timeout=self.timeout
            )
        pool[target] = connection
        return connection, True

    def _discard(self, target, connection) -> None:
        if self._pool().get(target) is connection:
            self._pool().pop(target, None)
        try:
            connection.close()
        except Exception:
            pass

    def close(self) -> None:
        """Close this thread's pooled connections (others keep theirs)."""
        pool = self._pool()
        for target in list(pool):
            self._discard(target, pool[target])

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- shard routing ----------------------------------------------------

    @staticmethod
    def _session_id_in(path: str) -> Optional[str]:
        parts = [part for part in path.split("?", 1)[0].split("/") if part]
        if len(parts) >= 2 and parts[0] == "sessions":
            return parts[1]
        return None

    def _target_for(self, path: str) -> Tuple:
        if self._unix_socket is not None:
            return (None, self._unix_socket)
        session_id = self._session_id_in(path)
        if session_id is not None:
            with self._affinity_lock:
                pinned = self._affinity.get(session_id)
            if pinned is not None:
                return pinned
        return (self._host, self._port)

    def _pin_affinity(self, session_id: str, target: Tuple[str, int]) -> None:
        with self._affinity_lock:
            self._affinity[session_id] = target

    @staticmethod
    def _replayable(body, chunked: bool) -> bool:
        return not chunked and (
            body is None or isinstance(body, (bytes, bytearray, str))
        )

    # -- request plumbing -------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body=None,
        headers: Optional[Dict[str, str]] = None,
        chunked: bool = False,
    ):
        target = self._target_for(path)
        redirects = 0
        while True:
            response, payload = self._request_once(
                target, method, path, body, headers, chunked
            )
            if response.status != 307:
                break
            location = response.getheader("Location")
            if not location or redirects >= 2:
                raise ServiceClientError(
                    307, "redirect loop talking to the sharded daemon"
                )
            parsed = urlparse(location)
            target = (parsed.hostname, parsed.port or 80)
            session_id = self._session_id_in(path)
            if session_id is not None:
                # From now on this session's requests go direct to the
                # owning worker — one redirect per session, ever.
                self._pin_affinity(session_id, target)
            if not self._replayable(body, chunked):
                raise ServiceClientError(
                    307,
                    "request for shard {} landed on the wrong worker and "
                    "its streamed body cannot be replayed; retry (the "
                    "shard affinity is now pinned)".format(
                        response.getheader("X-Repro-Shard")
                    ),
                )
            redirects += 1
        if response.status >= 400:
            document: Dict = {}
            try:
                document = json.loads(payload.decode("utf-8"))
                message = document["error"]
            except (ValueError, KeyError, UnicodeDecodeError):
                message = payload.decode("utf-8", errors="replace")[:200]
            if not isinstance(document, dict):
                document = {}
            retry_after = _parse_retry_after(
                response.getheader("Retry-After")
            )
            # 507 is the disk-degraded park: the daemon rolled the write
            # back cleanly and asked for a retry, so it is as transient
            # as backpressure.
            cls = (
                ServiceUnavailableError
                if response.status in (429, 503, 507)
                else ServiceClientError
            )
            raise cls(
                response.status,
                message,
                retry_after=retry_after,
                recoverable=bool(document.get("recoverable", False)),
            )
        return response, payload

    def _request_once(
        self, target, method, path, body, headers, chunked: bool
    ):
        """One exchange on a pooled connection, replacing a stale one.

        A *reused* connection that fails with a disconnect-class error
        before any response bytes arrive is almost always one the daemon
        closed while it was parked; it is replaced and the request
        replayed exactly once (replayable bodies only).  A *fresh*
        connection failing the same way is a real error and propagates.
        """
        replayed = False
        while True:
            connection, fresh = self._checkout(target)
            may_replay = (
                not fresh and not replayed and self._replayable(body, chunked)
            )
            try:
                try:
                    connection.request(
                        method,
                        path,
                        body=body,
                        headers=headers or {},
                        encode_chunked=chunked,
                    )
                except self._STALE_ERRORS:
                    if may_replay:
                        raise _StaleConnectionError()
                    # The daemon may have rejected the body mid-stream
                    # (413) and closed its read side; its early response
                    # is usually still in our receive buffer — read it
                    # instead of losing the status code.
                    pass
                response = connection.getresponse()
                payload = response.read()
            except _StaleConnectionError:
                self._discard(target, connection)
                replayed = True
                continue
            except self._STALE_ERRORS:
                self._discard(target, connection)
                if may_replay:
                    replayed = True
                    continue
                raise
            except Exception:
                self._discard(target, connection)
                raise
            if response.will_close:
                self._discard(target, connection)
            return response, payload

    def _json(self, method: str, path: str, document=None):
        body = None
        headers = {}
        if document is not None:
            body = json.dumps(document).encode("utf-8")
            headers["Content-Type"] = "application/json"
        _, payload = self._request(method, path, body=body, headers=headers)
        return json.loads(payload.decode("utf-8")) if payload else None

    # -- operations ------------------------------------------------------

    def healthz(self) -> Dict:
        return self._json("GET", "/healthz")

    def metrics_text(self) -> str:
        _, payload = self._request("GET", "/metrics")
        return payload.decode("utf-8")

    # -- session lifecycle ----------------------------------------------

    def create_session(
        self,
        salt: str,
        options: Optional[Dict] = None,
        state: Optional[Dict] = None,
    ) -> Dict:
        document: Dict = {"salt": salt}
        if options:
            document["options"] = options
        if state is not None:
            document["state"] = state
        return self._json("POST", "/sessions", document)

    def sessions(self) -> Dict:
        return self._json("GET", "/sessions")

    def session(self, session_id: str) -> Dict:
        return self._json("GET", "/sessions/{}".format(session_id))

    def delete_session(self, session_id: str) -> Dict:
        return self._json("DELETE", "/sessions/{}".format(session_id))

    def resume_session(self, salt: str, session_id: str) -> Dict:
        """Resume a recovered session on a restarted daemon.

        The daemon verifies the salt against the stored fingerprint and
        replays the session's journal; idempotent if already live.
        """
        return self._json(
            "POST", "/sessions", {"salt": salt, "resume": session_id}
        )

    def freeze(self, session_id: str, files: Dict[str, str]) -> Dict:
        return self._json(
            "POST", "/sessions/{}/freeze".format(session_id), {"files": files}
        )

    # -- anonymization ---------------------------------------------------

    def anonymize(
        self,
        session_id: str,
        text: Optional[str] = None,
        source: str = "<config>",
        chunks: Optional[Iterable[str]] = None,
        idempotency_key: Optional[str] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Dict:
        """Anonymize one file; pass *text* whole or stream it as *chunks*."""
        if (text is None) == (chunks is None):
            raise ValueError("pass exactly one of text or chunks")
        path = "/sessions/{}/anonymize".format(session_id)
        headers = {"X-Repro-Source": source, "Content-Type": "text/plain"}
        if extra_headers:
            headers.update(extra_headers)
        if idempotency_key:
            headers["X-Repro-Idempotency-Key"] = idempotency_key
        if chunks is not None:
            body = (chunk.encode("utf-8") for chunk in chunks)
            headers["Transfer-Encoding"] = "chunked"
            _, payload = self._request(
                "POST", path, body=body, headers=headers, chunked=True
            )
        else:
            _, payload = self._request(
                "POST", path, body=text.encode("utf-8"), headers=headers
            )
        return json.loads(payload.decode("utf-8"))

    # -- state persistence ----------------------------------------------

    def export_state(self, session_id: str) -> Dict:
        return self._json("GET", "/sessions/{}/state".format(session_id))

    def import_state(self, session_id: str, state: Dict) -> Dict:
        return self._json(
            "PUT", "/sessions/{}/state".format(session_id), state
        )


@dataclass
class RetryPolicy:
    """Bounded exponential backoff with jitter.

    ``deadline`` (seconds, measured per request from the first attempt)
    caps the total time spent retrying one operation — a retry whose
    backoff would overrun the deadline is not attempted.
    """

    max_attempts: int = 5
    base_delay: float = 0.1
    max_delay: float = 5.0
    multiplier: float = 2.0
    jitter: float = 0.1
    deadline: Optional[float] = None

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """The sleep before retry *attempt* (1-based), jittered."""
        delay = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


class RetryingServiceClient(ServiceClient):
    """A :class:`ServiceClient` that survives daemon restarts.

    Three mechanisms compose into exactly-once *effects* over an
    at-least-once wire:

    * transient failures (429/503 backpressure, dropped connections,
      connection-refused while the daemon restarts) are retried under
      :class:`RetryPolicy`, honoring ``Retry-After``;
    * every ``anonymize`` carries an idempotency key derived from the
      file's content digest, so a resubmission after an *ambiguous*
      failure (connection dropped after the daemon committed) returns
      the journaled result instead of re-running the request;
    * a 404 flagged ``"recoverable": true`` triggers an automatic
      session resume (re-presenting *salt*) and the operation repeats
      against the restored session.

    ``sleep``/``rng``/``clock`` are injectable so tests can drive the
    backoff schedule deterministically without real waiting.
    """

    #: Transient failures worth retrying: backpressure responses plus
    #: any transport-level breakage (refused, reset, torn response).
    RETRYABLE = (ServiceUnavailableError, OSError, http.client.HTTPException)

    def __init__(
        self,
        base_url: Optional[str] = None,
        unix_socket: Optional[str] = None,
        timeout: float = 300.0,
        salt: Optional[str] = None,
        policy: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        super().__init__(
            base_url=base_url, unix_socket=unix_socket, timeout=timeout
        )
        self.salt = salt
        self.policy = policy or RetryPolicy()
        self._sleep = sleep
        self._rng = rng or random.Random()
        self._clock = clock
        #: Failures absorbed by the retry loop / resume path.  The
        #: corpus fan-out layer reads these to count failovers that the
        #: per-shard client rode out invisibly (a worker respawn healed
        #: by a stale-connection replay plus an auto-resume would
        #: otherwise never surface).
        self.retries = 0
        self.resumes = 0
        self._stats_lock = threading.Lock()

    # -- the retry loop --------------------------------------------------

    def _with_retries(self, fn: Callable[[], Dict]) -> Dict:
        policy = self.policy
        deadline = (
            None if policy.deadline is None else self._clock() + policy.deadline
        )
        attempt = 0
        while True:
            try:
                return fn()
            except self.RETRYABLE as exc:
                attempt += 1
                if attempt >= policy.max_attempts:
                    raise
                delay = policy.backoff(attempt, self._rng)
                retry_after = getattr(exc, "retry_after", None)
                if retry_after is not None:
                    delay = max(delay, float(retry_after))
                if deadline is not None and self._clock() + delay > deadline:
                    raise
                with self._stats_lock:
                    self.retries += 1
                self._sleep(delay)

    def _resumable(self, session_id: str, fn: Callable[[], Dict]) -> Dict:
        """Run *fn* with retries, auto-resuming a recovered session."""

        def attempt() -> Dict:
            try:
                return fn()
            except ServiceClientError as exc:
                if (
                    exc.status == 404
                    and exc.recoverable
                    and self.salt is not None
                ):
                    # The daemon restarted and holds this session's
                    # durable history: re-present the salt, replay, redo.
                    self.resume_session(self.salt, session_id)
                    with self._stats_lock:
                        self.resumes += 1
                    return fn()
                raise

        return self._with_retries(attempt)

    # -- retried operations ----------------------------------------------

    def create_session(
        self,
        salt: str,
        options: Optional[Dict] = None,
        state: Optional[Dict] = None,
    ) -> Dict:
        return self._with_retries(
            lambda: ServiceClient.create_session(self, salt, options, state)
        )

    def resume(self, session_id: str) -> Dict:
        if self.salt is None:
            raise ValueError("construct RetryingServiceClient with salt=...")
        return self._with_retries(
            lambda: self.resume_session(self.salt, session_id)
        )

    def freeze(self, session_id: str, files: Dict[str, str]) -> Dict:
        def call() -> Dict:
            try:
                return ServiceClient.freeze(self, session_id, files)
            except ServiceClientError as exc:
                if exc.status == 409 and "already frozen" in exc.message:
                    # The freeze committed before an ambiguous failure
                    # (or survived a restart via the journal): converge.
                    info = ServiceClient.session(self, session_id)
                    stats = info.get("freeze_stats") or {}
                    return dict(stats, frozen=True, already_frozen=True)
                raise

        return self._resumable(session_id, call)

    def anonymize(
        self,
        session_id: str,
        text: Optional[str] = None,
        source: str = "<config>",
        chunks: Optional[Iterable[str]] = None,
        idempotency_key: Optional[str] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Dict:
        if chunks is not None:
            if text is not None:
                raise ValueError("pass exactly one of text or chunks")
            # A retry must be able to send the same bytes again, and the
            # idempotency key must cover them: materialize the stream.
            text = "".join(chunks)
        if idempotency_key is None and text is not None:
            idempotency_key = idempotency_key_for(source, text)
        return self._resumable(
            session_id,
            lambda: ServiceClient.anonymize(
                self,
                session_id,
                text=text,
                source=source,
                idempotency_key=idempotency_key,
                extra_headers=extra_headers,
            ),
        )

    def session(self, session_id: str) -> Dict:
        return self._resumable(
            session_id, lambda: ServiceClient.session(self, session_id)
        )

    def delete_session(self, session_id: str) -> Dict:
        def call() -> Dict:
            try:
                return ServiceClient.delete_session(self, session_id)
            except ServiceClientError as exc:
                if exc.status == 404 and not exc.recoverable:
                    # The delete committed before the response was lost.
                    return {"id": session_id, "already_deleted": True}
                raise

        return self._resumable(session_id, call)
