"""Stdlib client for the anonymization daemon.

Used by the ``repro-anonymize submit`` subcommand and the test suite;
kept dependency-free (:mod:`http.client` only) so anything that can run
the anonymizer can also talk to it.  Supports both transports:

    client = ServiceClient("http://127.0.0.1:8753")
    client = ServiceClient(unix_socket="/run/repro.sock")

    session = client.create_session("owner-secret")
    client.freeze(session["id"], {"rtr1.conf": text1, "rtr2.conf": text2})
    result = client.anonymize(session["id"], text1, source="rtr1.conf")
    result["text"]              # anonymized bytes
    result["report"]["flags"]   # leak-highlight lines for human review
    client.delete_session(session["id"])

``anonymize`` can also stream: pass ``chunks=<iterable of str>`` and the
body goes out chunked (``Transfer-Encoding: chunked``), so a corpus can
be piped through without materializing each file twice.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Dict, Iterable, Optional
from urllib.parse import urlparse

__all__ = ["ServiceClient", "ServiceClientError", "ServiceUnavailableError"]


class ServiceClientError(RuntimeError):
    """The daemon answered with an error status."""

    def __init__(self, status: int, message: str):
        super().__init__("HTTP {}: {}".format(status, message))
        self.status = status
        self.message = message


class ServiceUnavailableError(ServiceClientError):
    """Backpressure: the daemon answered 429 or 503 (retryable)."""


class _UnixHTTPConnection(http.client.HTTPConnection):
    def __init__(self, socket_path: str, timeout: Optional[float] = None):
        super().__init__("localhost", timeout=timeout)
        self._socket_path = socket_path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._socket_path)
        self.sock = sock


class ServiceClient:
    """A thin, connection-per-request client (thread-safe by design:
    concurrent callers never share a connection object)."""

    def __init__(
        self,
        base_url: Optional[str] = None,
        unix_socket: Optional[str] = None,
        timeout: float = 300.0,
    ):
        if (base_url is None) == (unix_socket is None):
            raise ValueError("pass exactly one of base_url or unix_socket")
        if base_url is not None and base_url.startswith("unix://"):
            unix_socket = base_url[len("unix://"):]
            base_url = None
        self._unix_socket = unix_socket
        self.timeout = timeout
        if base_url is not None:
            parsed = urlparse(base_url)
            if parsed.scheme != "http" or not parsed.hostname:
                raise ValueError(
                    "base_url must look like http://host:port, got "
                    "{!r}".format(base_url)
                )
            self._host = parsed.hostname
            self._port = parsed.port or 80
        else:
            self._host = self._port = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._unix_socket is not None:
            return _UnixHTTPConnection(self._unix_socket, timeout=self.timeout)
        return http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout
        )

    def _request(
        self,
        method: str,
        path: str,
        body=None,
        headers: Optional[Dict[str, str]] = None,
        chunked: bool = False,
    ):
        connection = self._connection()
        try:
            try:
                connection.request(
                    method,
                    path,
                    body=body,
                    headers=headers or {},
                    encode_chunked=chunked,
                )
            except (BrokenPipeError, ConnectionResetError):
                # The daemon may have rejected the body mid-stream (413)
                # and closed its read side; its early response is usually
                # still in our receive buffer — read it instead of losing
                # the status code.
                pass
            response = connection.getresponse()
            payload = response.read()
        finally:
            connection.close()
        if response.status >= 400:
            try:
                message = json.loads(payload.decode("utf-8"))["error"]
            except (ValueError, KeyError, UnicodeDecodeError):
                message = payload.decode("utf-8", errors="replace")[:200]
            if response.status in (429, 503):
                raise ServiceUnavailableError(response.status, message)
            raise ServiceClientError(response.status, message)
        return response, payload

    def _json(self, method: str, path: str, document=None):
        body = None
        headers = {}
        if document is not None:
            body = json.dumps(document).encode("utf-8")
            headers["Content-Type"] = "application/json"
        _, payload = self._request(method, path, body=body, headers=headers)
        return json.loads(payload.decode("utf-8")) if payload else None

    # -- operations ------------------------------------------------------

    def healthz(self) -> Dict:
        return self._json("GET", "/healthz")

    def metrics_text(self) -> str:
        _, payload = self._request("GET", "/metrics")
        return payload.decode("utf-8")

    # -- session lifecycle ----------------------------------------------

    def create_session(
        self,
        salt: str,
        options: Optional[Dict] = None,
        state: Optional[Dict] = None,
    ) -> Dict:
        document: Dict = {"salt": salt}
        if options:
            document["options"] = options
        if state is not None:
            document["state"] = state
        return self._json("POST", "/sessions", document)

    def sessions(self) -> Dict:
        return self._json("GET", "/sessions")

    def session(self, session_id: str) -> Dict:
        return self._json("GET", "/sessions/{}".format(session_id))

    def delete_session(self, session_id: str) -> Dict:
        return self._json("DELETE", "/sessions/{}".format(session_id))

    def freeze(self, session_id: str, files: Dict[str, str]) -> Dict:
        return self._json(
            "POST", "/sessions/{}/freeze".format(session_id), {"files": files}
        )

    # -- anonymization ---------------------------------------------------

    def anonymize(
        self,
        session_id: str,
        text: Optional[str] = None,
        source: str = "<config>",
        chunks: Optional[Iterable[str]] = None,
    ) -> Dict:
        """Anonymize one file; pass *text* whole or stream it as *chunks*."""
        if (text is None) == (chunks is None):
            raise ValueError("pass exactly one of text or chunks")
        path = "/sessions/{}/anonymize".format(session_id)
        headers = {"X-Repro-Source": source, "Content-Type": "text/plain"}
        if chunks is not None:
            body = (chunk.encode("utf-8") for chunk in chunks)
            headers["Transfer-Encoding"] = "chunked"
            _, payload = self._request(
                "POST", path, body=body, headers=headers, chunked=True
            )
        else:
            _, payload = self._request(
                "POST", path, body=text.encode("utf-8"), headers=headers
            )
        return json.loads(payload.decode("utf-8"))

    # -- state persistence ----------------------------------------------

    def export_state(self, session_id: str) -> Dict:
        return self._json("GET", "/sessions/{}/state".format(session_id))

    def import_state(self, session_id: str, state: Dict) -> Dict:
        return self._json(
            "PUT", "/sessions/{}/state".format(session_id), state
        )
