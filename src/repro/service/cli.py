"""``repro-anonymize serve`` and ``repro-anonymize submit``.

``serve`` runs the daemon in the foreground until SIGTERM/SIGINT, then
drains gracefully (in-flight requests finish) and exits 0.  ``submit`` is
the batch CLI's service-backed twin: it collects the same input files,
creates a session, freezes the mapping state over the whole corpus (so
the result is byte-identical to ``repro-anonymize --jobs N``), submits
file by file, writes outputs with the same atomic writer, and maps its
outcome to the shared exit codes of :mod:`repro.core.status`.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path

from repro.core.status import (
    EXIT_BAD_FAULT_PLAN,
    EXIT_JOURNAL_CORRUPT,
    EXIT_NO_INPUT,
    EXIT_OK,
    EXIT_RECOVERY_FAILED,
    EXIT_SERVICE_ERROR,
    EXIT_STATE_ERROR,
    exit_code_for,
)

__all__ = ["serve_main", "submit_main"]


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-anonymize serve",
        description="Run the anonymization service daemon (stdlib HTTP "
        "over TCP or a Unix socket).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8753,
        help="TCP port (0 picks an ephemeral port, printed on startup)",
    )
    parser.add_argument(
        "--unix-socket",
        default=None,
        metavar="PATH",
        help="serve on a Unix domain socket instead of TCP",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="pre-forked worker processes sharing the listening port; "
        "sessions are sharded across them by a stable hash of the "
        "session id (TCP only)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=4,
        help="anonymization worker threads per process",
    )
    parser.add_argument(
        "--socket-strategy",
        choices=("auto", "reuseport", "inherit"),
        default="auto",
        help="how --workers > 1 share the port: per-worker SO_REUSEPORT "
        "sockets, one inherited pre-fork socket, or auto (reuseport "
        "where the kernel has it)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="queued requests beyond the workers before 429s",
    )
    parser.add_argument(
        "--max-request-bytes",
        type=int,
        default=32 * 1024 * 1024,
        help="reject request bodies larger than this with 413",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=64, help="live session cap"
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="abandon a request that has not completed after this long "
        "(the client gets 503 + Retry-After)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="make sessions durable: write-ahead journal + snapshots "
        "here, and recover them after a crash or restart",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=64,
        metavar="N",
        help="rotate a session's journal into a full snapshot every N "
        "records",
    )
    parser.add_argument(
        "--strict-recovery",
        action="store_true",
        help="refuse to start if recovery quarantined any session "
        "(exit {})".format(EXIT_JOURNAL_CORRUPT),
    )
    parser.add_argument(
        "--ready-file",
        default=None,
        metavar="PATH",
        help="after binding, write the service URL here (scripts/CI poll it)",
    )
    parser.add_argument(
        "--watchdog-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="with --workers > 1, SIGKILL and respawn a worker whose "
        "heartbeat is older than this (0 disables the watchdog)",
    )
    return parser


def serve_main(argv=None) -> int:
    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if args.workers < 1 or args.threads < 1 or args.queue_limit < 1:
        parser.error("--workers, --threads, and --queue-limit must be >= 1")
    # A typo'd fault plan must refuse to start, not inject nothing or
    # explode mid-request: validate the environment spec before binding.
    from repro.core.faults import FaultPlanError, parse_env_fault_plan

    try:
        parse_env_fault_plan()
    except FaultPlanError as exc:
        print(
            "error: invalid REPRO_FAULT_PLAN: {}".format(exc),
            file=sys.stderr,
        )
        return EXIT_BAD_FAULT_PLAN
    if args.workers > 1:
        if args.unix_socket is not None:
            parser.error(
                "--workers > 1 shares a TCP port; it cannot be combined "
                "with --unix-socket"
            )
        from repro.service.supervisor import run_supervisor

        return run_supervisor(args)

    from repro.service.journal import JournalError
    from repro.service.server import AnonymizationService
    from repro.service.sharding import (
        TopologyError,
        check_topology,
        write_topology,
    )

    if args.state_dir is not None:
        try:
            check_topology(args.state_dir, 1)
            write_topology(args.state_dir, 1)
        except TopologyError as exc:
            print("error: {}".format(exc), file=sys.stderr)
            return EXIT_RECOVERY_FAILED
        except OSError as exc:
            print(
                "error: cannot use state dir {}: {}".format(
                    args.state_dir, exc
                ),
                file=sys.stderr,
            )
            return EXIT_RECOVERY_FAILED
    try:
        service = AnonymizationService(
            host=args.host,
            port=args.port,
            unix_socket=args.unix_socket,
            workers=args.threads,
            queue_limit=args.queue_limit,
            max_request_bytes=args.max_request_bytes,
            max_sessions=args.max_sessions,
            request_timeout=args.request_timeout,
            state_dir=args.state_dir,
            snapshot_every=args.snapshot_every,
        )
    except JournalError as exc:
        print(
            "error: state recovery failed: {}".format(exc), file=sys.stderr
        )
        return EXIT_RECOVERY_FAILED
    summary = service.recovery_summary
    if summary is not None:
        print("state recovery: {}".format(summary.describe()))
        for session_id, reason in sorted(summary.quarantined.items()):
            print(
                "quarantined session {}: {}".format(session_id, reason),
                file=sys.stderr,
            )
        if args.strict_recovery and summary.quarantined:
            print(
                "error: --strict-recovery set and {} session(s) were "
                "quarantined; inspect the *.quarantined directories under "
                "{} before serving".format(
                    len(summary.quarantined), args.state_dir
                ),
                file=sys.stderr,
            )
            # serve_forever never ran, so httpd.shutdown() would block
            # on its never-set event: close the pieces directly.
            service.drain_close()
            return EXIT_JOURNAL_CORRUPT
    print("repro-anonymize service listening on {}".format(service.base_url))
    sys.stdout.flush()
    if args.ready_file:
        Path(args.ready_file).write_text(service.base_url + "\n")

    def _drain(signum, frame):
        # serve_forever() runs in this (main) thread, so the actual
        # shutdown handshake must happen elsewhere.
        service.begin_drain()
        threading.Thread(target=service.stop_serving, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    try:
        service.serve_forever()
    finally:
        # serve_forever returned: the accept loop stopped.  Close idle
        # keep-alive connections, join the busy ones, drain the
        # executor, drop the sessions.
        service.drain_close()
    print("repro-anonymize service drained; exiting")
    return EXIT_OK


def build_submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-anonymize submit",
        description="Anonymize config files through a running "
        "repro-anonymize service.",
    )
    parser.add_argument("paths", nargs="*", help="config files or directories")
    parser.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="corpus fan-out mode: freeze once over every file under DIR, "
        "open one session per shard, and drive the files across the "
        "shards with failover (requires --out-dir and --salt)",
    )
    parser.add_argument(
        "--corpus-jobs",
        type=int,
        default=4,
        metavar="N",
        help="concurrent in-flight files in --corpus mode",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="overall budget for the corpus run; files that cannot be "
        "completed on any shard before it expires are quarantined "
        "(exit code 10, EXIT_PARTIAL_CORPUS)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted --corpus run from the manifest in "
        "--out-dir (files whose recorded digests still match on-disk "
        "outputs are skipped; byte-identical to an uninterrupted run)",
    )
    parser.add_argument(
        "--corpus-report",
        default=None,
        metavar="PATH",
        help="write the merged corpus report (failovers, breaker states, "
        "quarantines) as JSON",
    )
    parser.add_argument(
        "--server",
        default=None,
        metavar="URL",
        help="service base URL (http://host:port or unix:///path)",
    )
    parser.add_argument(
        "--unix-socket", default=None, metavar="PATH", help="service socket"
    )
    parser.add_argument(
        "--salt", default=None, help="owner secret (required; keep private!)"
    )
    parser.add_argument(
        "--session",
        default=None,
        metavar="ID",
        help="reuse an existing session instead of creating one "
        "(it is left alive afterwards)",
    )
    parser.add_argument(
        "--no-freeze",
        action="store_true",
        help="skip the corpus-wide mapping freeze (output then depends on "
        "submission order, like the one-pass CLI)",
    )
    parser.add_argument(
        "--out-dir", default=None, help="directory for anonymized outputs"
    )
    parser.add_argument(
        "--suffix", default=".anon", help="suffix for outputs next to inputs"
    )
    parser.add_argument(
        "--report", action="store_true", help="print each file's flag count"
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=5,
        metavar="N",
        help="attempts per request before giving up (transient failures "
        "back off exponentially with jitter; 1 disables retrying)",
    )
    parser.add_argument(
        "--retry-base-delay",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="first backoff delay; doubles per attempt up to 5s",
    )
    parser.add_argument(
        "--retry-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="cap the total time spent retrying any one request",
    )
    return parser


def submit_main(argv=None) -> int:
    parser = build_submit_parser()
    args = parser.parse_args(argv)
    if args.server is None and args.unix_socket is None:
        parser.error("pass --server URL or --unix-socket PATH")
    if args.session is None and args.salt is None:
        parser.error("--salt is required (unless --session reuses one)")
    if args.corpus is None and not args.paths:
        parser.error("pass config files/directories or --corpus DIR")
    if args.retries < 1:
        parser.error("--retries must be >= 1")

    from repro.cli import _collect_files
    from repro.core.runner import RunnerError, atomic_write_text, resolve_out_paths
    from repro.service.client import (
        RetryingServiceClient,
        RetryPolicy,
        ServiceClientError,
    )

    if args.corpus is not None:
        if args.out_dir is None:
            parser.error("--corpus requires --out-dir (the resume manifest "
                         "lives there)")
        if args.salt is None:
            parser.error("--corpus requires --salt")
        if args.session is not None:
            parser.error("--corpus opens its own per-shard sessions; "
                         "--session cannot be combined with it")
        if args.corpus_jobs < 1:
            parser.error("--corpus-jobs must be >= 1")
        from repro.service.corpus import run_corpus_main

        try:
            configs = _collect_files(list(args.paths) + [args.corpus])
        except FileNotFoundError as exc:
            print("error: {}".format(exc), file=sys.stderr)
            return EXIT_NO_INPUT
        if not configs:
            print("error: no readable config files found", file=sys.stderr)
            return EXIT_NO_INPUT
        try:
            out_paths = resolve_out_paths(configs, args.out_dir, args.suffix)
        except RunnerError as exc:
            print("error: {}".format(exc), file=sys.stderr)
            return EXIT_STATE_ERROR
        return run_corpus_main(args, configs, out_paths)

    configs = _collect_files(args.paths)
    if not configs:
        print("error: no readable config files found", file=sys.stderr)
        return EXIT_NO_INPUT
    try:
        out_paths = resolve_out_paths(configs, args.out_dir, args.suffix)
    except RunnerError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return EXIT_STATE_ERROR

    client = RetryingServiceClient(
        base_url=args.server,
        unix_socket=args.unix_socket,
        salt=args.salt,
        policy=RetryPolicy(
            max_attempts=args.retries,
            base_delay=args.retry_base_delay,
            deadline=args.retry_deadline,
        ),
    )
    created = False
    try:
        if args.session is not None:
            session_id = args.session
        else:
            session = client.create_session(args.salt)
            session_id = session["id"]
            created = True
            print(
                "session {} (salt fingerprint {})".format(
                    session_id, session["salt_fingerprint"]
                )
            )
        if not args.no_freeze and args.session is None:
            stats = client.freeze(session_id, configs)
            print(
                "froze mappings over {} files ({} addresses)".format(
                    len(configs), stats["addresses"]
                )
            )

        leaks = False
        dirty = False
        for name in sorted(configs):
            result = client.anonymize(
                session_id, configs[name], source=name
            )
            if result["status"] != "ok":
                dirty = True
                print(
                    "fail-closed: {} ({} placeholder lines)".format(
                        name, result["report"]["lines_failed_closed"]
                    ),
                    file=sys.stderr,
                )
            flags = result["report"]["flags"]
            if flags:
                leaks = True
            if args.report:
                print(
                    "{}: {} lines, {} flags".format(
                        name,
                        result["report"]["lines_out"],
                        len(flags),
                    )
                )
            out_path = Path(out_paths[name])
            try:
                atomic_write_text(out_path, result["text"])
            except OSError as exc:
                dirty = True
                print(
                    "write failed for {} ({}): output withheld".format(
                        name, type(exc).__name__
                    ),
                    file=sys.stderr,
                )
                continue
            print("wrote {}".format(out_path))
        return exit_code_for(leaks=leaks, dirty=dirty)
    except ServiceClientError as exc:
        print("error: service request failed: {}".format(exc), file=sys.stderr)
        return EXIT_SERVICE_ERROR
    except (ConnectionError, OSError) as exc:
        print(
            "error: cannot reach the service ({})".format(
                type(exc).__name__
            ),
            file=sys.stderr,
        )
        return EXIT_SERVICE_ERROR
    finally:
        if created:
            try:
                client.delete_session(session_id)
            except Exception:
                pass
