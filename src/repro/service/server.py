"""The anonymization daemon: stdlib HTTP server over TCP or Unix socket.

``repro-anonymize serve`` turns the batch anonymizer into a long-lived
service so the per-invocation setup cost (pass-list load, rule
compilation, state load, mapping freeze) is paid once per *session* and
amortized over many requests.  Everything here is stdlib only:
:mod:`http.server` + :mod:`socketserver` for transport, a bounded
thread-pool executor for work, :mod:`repro.service.metrics` for
observability.

API (all request/response bodies UTF-8; JSON unless noted):

====================================  =======================================
``GET /healthz``                      liveness + ``draining`` flag
``GET /metrics``                      Prometheus text exposition
``GET /sessions``                     list live sessions
``POST /sessions``                    ``{"salt": ..., "options": {...}}``
``GET /sessions/<id>``                session info (fingerprint, freeze...)
``DELETE /sessions/<id>``             drain + remove the session
``POST /sessions/<id>/freeze``        ``{"files": {name: text}}`` manifest
``POST /sessions/<id>/anonymize``     raw config text (Content-Length or
                                      chunked); ``X-Repro-Source`` names the
                                      file; response carries the anonymized
                                      text and the per-file report (flags =
                                      the leak-highlight lines)
``GET/PUT /sessions/<id>/state``      export / import mapping state (treat
                                      like the salt!)
====================================  =======================================

Operational guarantees:

* **Fail-closed.**  A rule exception yields the salted placeholder line
  and a flagged report (handled in the engine / session layer); the
  handler never answers 500 with raw input echoed back.  Unexpected
  handler errors answer with the exception *class name* only.
* **Bounded.**  Request bodies above ``max_request_bytes`` get 413
  without being buffered; when the work queue is full the request gets
  429 + ``Retry-After`` instead of piling onto the heap.
* **Drainable.**  SIGTERM (see :mod:`repro.service.cli`) stops accepting
  connections, lets in-flight requests finish, drains the executor, and
  exits 0 — no request is ever dropped mid-anonymization.
"""

from __future__ import annotations

import http.client
import json
import os
import queue
import socket
import socketserver
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import urlparse

from repro.service.journal import (
    JournalDiskError,
    RecoveryError,
    SessionStore,
)
from repro.service.metrics import (
    ServiceMetrics,
    merge_snapshots,
    render_snapshot,
)
from repro.service.sharding import ShardInfo
from repro.service.sessions import (
    SessionError,
    SessionManager,
    SessionOptionsError,
    SessionStateError,
    UnknownSessionError,
)

__all__ = [
    "AnonymizationService",
    "BoundedExecutor",
    "QueueFullError",
    "RequestTooLargeError",
]

#: Default cap on one request body (32 MiB — far above any single router
#: config, far below a memory-exhaustion payload).
DEFAULT_MAX_REQUEST_BYTES = 32 * 1024 * 1024

#: Durability counters, pre-registered at 0 so scrapers and CI see the
#: full set before the first journal event.
DURABILITY_COUNTERS = (
    (
        "repro_service_journal_records_total",
        "Journal records durably appended (fsync'd before the response).",
    ),
    (
        "repro_service_journal_snapshots_total",
        "Full-state snapshots written (journal rotations).",
    ),
    (
        "repro_service_journal_torn_discarded_total",
        "Torn trailing journal records discarded at recovery "
        "(unacknowledged requests).",
    ),
    (
        "repro_service_journal_quarantined_total",
        "Session directories quarantined at recovery (corrupt history).",
    ),
    (
        "repro_session_recoveries_total",
        "Sessions resumed from durable state after a restart.",
    ),
    (
        "repro_idempotent_replays_total",
        "Anonymize requests answered from the journal by idempotency key.",
    ),
    (
        "repro_requests_timed_out_total",
        "Requests abandoned after exceeding the request timeout (503).",
    ),
    (
        "repro_service_journal_snapshot_failures_total",
        "Snapshot writes that failed at the disk level (non-fatal; the "
        "journal is intact and rotation retries at the next boundary).",
    ),
    (
        "repro_disk_degraded_responses_total",
        "Mutating requests answered 507 because a journal append failed "
        "at the disk level (the record was rolled back, never torn).",
    ),
)

#: Corpus fan-out counters, pre-registered at 0 so a scrape before the
#: first ``submit --corpus`` run is well-formed.
CORPUS_COUNTERS = (
    (
        "repro_corpus_files_total",
        "Anonymize requests tagged as part of a corpus fan-out run "
        "(X-Repro-Corpus header).",
    ),
    (
        "repro_corpus_failovers_total",
        "Corpus files re-driven on another shard after their primary "
        "failed (X-Repro-Failover header).",
    ),
)


class QueueFullError(RuntimeError):
    """The bounded work queue is full (maps to 429)."""


class RequestTooLargeError(RuntimeError):
    """The request body exceeds ``max_request_bytes`` (maps to 413)."""


class _Job:
    """A unit of work submitted to :class:`BoundedExecutor`."""

    __slots__ = ("fn", "abandoned", "_done", "_result", "_exc")

    def __init__(self, fn: Callable):
        self.fn = fn
        #: Set when the waiting handler gave up (timeout).  A worker that
        #: has not started the job yet skips it entirely; one that has
        #: finishes normally — the session's journal commit still happens,
        #: only the response is lost, which is exactly the ambiguous
        #: failure the idempotency key exists for.
        self.abandoned = False
        self._done = threading.Event()
        self._result = None
        self._exc: Optional[BaseException] = None

    def run(self) -> None:
        try:
            self._result = self.fn()
        except BaseException as exc:  # re-raised in the waiting thread
            self._exc = exc
        finally:
            self._done.set()

    def abandon(self) -> None:
        self.abandoned = True

    def wait(self, timeout: Optional[float] = None):
        if not self._done.wait(timeout):
            raise TimeoutError("request did not complete in time")
        if self._exc is not None:
            raise self._exc
        return self._result


_SHUTDOWN = object()


class BoundedExecutor:
    """A fixed thread pool fed by a bounded queue.

    ``submit`` never blocks: when the queue is full it raises
    :class:`QueueFullError` immediately, which the handler turns into a
    429 — backpressure is pushed to the client instead of growing an
    unbounded backlog inside the daemon.
    """

    def __init__(self, workers: int = 4, queue_limit: int = 16):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_limit)
        self._in_flight = 0
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._worker, name="repro-worker-{}".format(i)
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            if item.abandoned:
                # The handler already answered 503; running the job now
                # would do work nobody will read and skew the gauges.
                item._done.set()
                continue
            with self._lock:
                self._in_flight += 1
            try:
                item.run()
            finally:
                with self._lock:
                    self._in_flight -= 1

    def submit(self, fn: Callable) -> _Job:
        job = _Job(fn)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            raise QueueFullError(
                "work queue full ({} queued)".format(self._queue.maxsize)
            )
        return job

    def depth(self) -> int:
        """Jobs waiting for a worker (the backpressure gauge)."""
        return self._queue.qsize()

    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def shutdown(self, wait: bool = True) -> None:
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        if wait:
            for thread in self._threads:
                thread.join()


class _ThreadingHTTPServer(socketserver.ThreadingMixIn, HTTPServer):
    """TCP transport: one (joinable) thread per connection.

    ``daemon_threads = False`` + ``block_on_close = True`` make
    ``server_close()`` wait for in-flight connections — the heart of the
    graceful drain.  Keep-alive clients park their connection between
    requests, so the server tracks every live handler and, at drain,
    closes the *idle* ones (mid-request connections finish their
    response first and then close, because ``_send_bytes`` refuses to
    keep a connection alive while draining).
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True
    request_queue_size = 128
    service: "AnonymizationService"

    def __init__(self, *args, **kwargs):
        self._handlers = set()
        self._handlers_lock = threading.Lock()
        super().__init__(*args, **kwargs)

    def service_actions(self) -> None:
        """Called by ``serve_forever`` between accepts (every poll
        interval): refreshes this worker's watchdog heartbeat, so a
        wedged accept loop is exactly what stops the heartbeat."""
        super().service_actions()
        service = getattr(self, "service", None)
        if service is not None:
            service.heartbeat_tick()

    def register_handler(self, handler) -> None:
        with self._handlers_lock:
            self._handlers.add(handler)

    def unregister_handler(self, handler) -> None:
        with self._handlers_lock:
            self._handlers.discard(handler)

    def close_idle_connections(self) -> None:
        """Wake keep-alive connections parked between requests.

        Without this, ``server_close()`` would block on every idle
        keep-alive thread until the client went away or the per-request
        socket timeout fired.  A connection that is mid-request is left
        alone — its in-flight work finishes and the draining flag closes
        it after the response.
        """
        with self._handlers_lock:
            handlers = list(self._handlers)
        for handler in handlers:
            if getattr(handler, "_busy", False):
                continue
            try:
                handler.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass


class _UnixHTTPServer(_ThreadingHTTPServer):
    """The same server bound to a Unix domain socket."""

    address_family = socket.AF_UNIX
    allow_reuse_address = False

    def server_bind(self):
        # HTTPServer.server_bind assumes (host, port); bind directly, and
        # replace a stale socket file left by a previous daemon.
        import os

        if os.path.exists(self.server_address):
            os.unlink(self.server_address)
        socketserver.TCPServer.server_bind(self)
        self.server_name = "localhost"
        self.server_port = 0


class ServiceRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-anonymize-service/1.0"
    #: Backstop: an idle keep-alive connection that survives the drain's
    #: targeted close (raced a new request) still times out eventually.
    timeout = 30

    def setup(self):
        super().setup()
        self._busy = False
        self.server.register_handler(self)

    def finish(self):
        self.server.unregister_handler(self)
        super().finish()

    # The access log is /metrics, not stderr chatter.
    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        pass

    def address_string(self):
        # client_address is "" over a Unix socket; the default impl
        # indexes it as a (host, port) pair.
        if isinstance(self.client_address, str):
            return self.client_address or "unix"
        return super().address_string()

    # -- dispatch --------------------------------------------------------

    def do_GET(self) -> None:
        self._route("GET")

    def do_POST(self) -> None:
        self._route("POST")

    def do_PUT(self) -> None:
        self._route("PUT")

    def do_DELETE(self) -> None:
        self._route("DELETE")

    def _route(self, method: str) -> None:
        self._busy = True
        try:
            self._route_inner(method)
        finally:
            self._busy = False

    def _route_inner(self, method: str) -> None:
        service = self.server.service
        path = urlparse(self.path).path
        parts = [part for part in path.split("/") if part]
        try:
            if method == "GET" and parts == ["healthz"]:
                return self._handle_healthz()
            if method == "GET" and parts == ["metrics"]:
                return self._handle_metrics()
            if method == "GET" and parts == ["metrics", "local"]:
                return self._handle_metrics_local()
            if parts[:1] == ["sessions"]:
                if (
                    len(parts) >= 2
                    and service.shard is not None
                    and not service.shard.owns(parts[1])
                ):
                    # Not this worker's shard: 307 to the owner's direct
                    # listener.  The body may be unread, so the
                    # connection closes; the client pins the affinity and
                    # goes direct from then on.
                    return self._redirect_to_shard(parts[1])
                if len(parts) == 1:
                    if method == "GET":
                        listing = {
                            "sessions": [
                                self._shard_fields(info)
                                for info in service.sessions.list()
                            ]
                        }
                        if service.shard is not None:
                            listing["shard"] = service.shard.index
                            listing["workers"] = service.shard.count
                        return self._send_counted("sessions", listing)
                    if method == "POST":
                        return self._handle_create_session()
                elif len(parts) == 2:
                    if method == "GET":
                        return self._send_counted(
                            "sessions",
                            self._shard_fields(
                                service.sessions.get(parts[1]).describe()
                            ),
                        )
                    if method == "DELETE":
                        return self._send_counted(
                            "sessions", service.sessions.delete(parts[1])
                        )
                elif len(parts) == 3 and parts[2] == "freeze" and method == "POST":
                    return self._handle_freeze(parts[1])
                elif len(parts) == 3 and parts[2] == "anonymize" and method == "POST":
                    return self._handle_anonymize(parts[1])
                elif len(parts) == 3 and parts[2] == "state":
                    if method == "GET":
                        return self._handle_state_export(parts[1])
                    if method in ("PUT", "POST"):
                        return self._handle_state_import(parts[1])
            self._send_error_json(404, "no such endpoint: {} {}".format(method, path))
        except RequestTooLargeError:
            self.close_connection = True
            self._send_error_json(
                413,
                "request body exceeds the {} byte limit".format(
                    service.max_request_bytes
                ),
            )
        except QueueFullError:
            self._send_error_json(
                429, "work queue full; retry shortly", retry_after=1
            )
        except UnknownSessionError as exc:
            # "recoverable": the session's durable history survived a
            # restart; POST /sessions {"salt", "resume"} brings it back.
            self._send_error_json(
                404,
                str(exc),
                body_extra={
                    "recoverable": bool(getattr(exc, "recoverable", False))
                },
            )
        except (SessionOptionsError, SessionStateError) as exc:
            self._send_error_json(400, str(exc))
        except SessionError as exc:
            self._send_error_json(409, str(exc))
        except RecoveryError as exc:
            # Resume refused (wrong salt / quarantined history): the
            # client must not retry blindly — fail-closed, not a 500.
            self._send_error_json(409, str(exc))
        except JournalDiskError as exc:
            # Disk-level write failure (ENOSPC/EIO): the append was
            # rolled back cleanly — nothing was acknowledged, nothing
            # torn — so the condition is transient.  507 + Retry-After
            # parks the session read-only; the client's retry is the
            # half-open probe that clears it once writes succeed.
            service.metrics.inc_counter("repro_disk_degraded_responses_total")
            self._send_error_json(507, str(exc), retry_after=2)
        except BrokenPipeError:
            self.close_connection = True
        except Exception as exc:
            # Never echo request content: class name only.
            self.close_connection = True
            try:
                self._send_error_json(
                    500, "internal error ({})".format(type(exc).__name__)
                )
            except Exception:
                pass

    # -- endpoint handlers ----------------------------------------------

    def _handle_healthz(self) -> None:
        service = self.server.service
        document = {
            "status": "draining" if service.draining else "ok",
            "sessions": len(service.sessions),
            "queue_depth": service.executor.depth(),
            "in_flight": service.executor.in_flight(),
            "pid": os.getpid(),
        }
        if service.shard is not None:
            document["shard"] = service.shard.index
            document["workers"] = service.shard.count
            document["generation"] = service.generation
            document["shards"] = service.shard.table()
        if service.status_board is not None and service.shard is not None:
            board = service.status_board
            count = service.shard.count
            age = board.heartbeat_age(service.shard.index)
            document["watchdog"] = {
                "timeout": service.watchdog_timeout or None,
                "heartbeat_age": None if age is None else round(age, 3),
            }
            document["respawns"] = {
                str(i): board.respawns(i) for i in range(count)
            }
            if service.respawn_limit is not None:
                document["respawn_budget"] = {
                    str(i): max(0, service.respawn_limit - board.respawns(i))
                    for i in range(count)
                }
        if service.store is not None:
            document["durable"] = True
            document["recoverable_sessions"] = len(
                service.store.summary.recoverable
            )
            document["quarantined_sessions"] = len(
                service.store.summary.quarantined
            )
        self._send_json(200, document)
        service.metrics.observe_request("healthz", 200)

    def _handle_metrics(self) -> None:
        """The scrape: local registry, or the cross-worker aggregate.

        In the pre-fork daemon every worker's counters are per-process;
        a scrape that only saw one shard would under-report by ~N.  So
        the worker that fields ``GET /metrics`` collects every shard's
        snapshot — its own under the registry lock, its siblings via
        ``GET /metrics/local`` on their direct listeners — and renders
        the merged exposition, with ``repro_worker_up{shard=...}``
        showing who answered.  A worker mid-respawn reports as 0 rather
        than failing the scrape.
        """
        service = self.server.service
        if service.shard is None:
            body = service.metrics.render().encode("utf-8")
        else:
            snapshots = []
            worker_up: Dict[int, int] = {}
            for index, address in enumerate(service.shard.addresses):
                if index == service.shard.index:
                    snapshots.append(service.metrics.snapshot())
                    worker_up[index] = 1
                    continue
                snap = _fetch_shard_snapshot(address)
                if snap is None:
                    worker_up[index] = 0
                else:
                    snapshots.append(snap)
                    worker_up[index] = 1
            body = render_snapshot(
                merge_snapshots(snapshots), worker_up=worker_up
            ).encode("utf-8")
        self._send_bytes(200, body, "text/plain; version=0.0.4; charset=utf-8")
        service.metrics.observe_request("metrics", 200)

    def _handle_metrics_local(self) -> None:
        """This worker's registry snapshot as JSON (the aggregation wire)."""
        service = self.server.service
        self._send_json(200, service.metrics.snapshot())
        service.metrics.observe_request("metrics", 200)

    def _redirect_to_shard(self, session_id: str) -> None:
        service = self.server.service
        shard = service.shard
        target = shard.address_for(session_id)
        index = next(
            i for i, addr in enumerate(shard.addresses) if addr == target
        )
        # The request body may be wholly unread: close, don't reuse.
        self.close_connection = True
        location = target + self.path
        self._send_bytes(
            307,
            json.dumps(
                {"redirect": location, "shard": index}, sort_keys=True
            ).encode("utf-8"),
            "application/json",
            extra_headers={
                "Location": location,
                "X-Repro-Shard": str(index),
            },
        )
        service.metrics.observe_request("redirect", 307)

    def _shard_fields(self, document: Dict) -> Dict:
        """Stamp a session document with its shard and direct URL."""
        service = self.server.service
        if service.shard is not None and isinstance(document, dict):
            document = dict(
                document,
                shard=service.shard.index,
                shard_url=service.shard.own_address,
            )
        return document

    def _handle_create_session(self) -> None:
        service = self.server.service
        if service.draining:
            return self._send_error_json(503, "service is draining")
        document = self._read_json()
        if document.get("resume"):
            resume_id = document["resume"]
            if service.shard is not None and not service.shard.owns(
                str(resume_id)
            ):
                # The durable history lives in the owning worker's shard
                # directory; only that worker may replay it.
                return self._redirect_to_shard(str(resume_id))
            session = service.sessions.resume(
                document.get("salt"), resume_id
            )
            service.metrics.observe_request("sessions", 200)
            return self._send_json(200, self._shard_fields(session.describe()))
        session = service.sessions.create(
            document.get("salt"), document.get("options")
        )
        if "state" in document:
            try:
                session.import_state(json.dumps(document["state"]))
            except SessionError:
                service.sessions.delete(session.id)
                raise
        service.metrics.observe_request("sessions", 201)
        self._send_json(201, self._shard_fields(session.describe()))

    def _handle_freeze(self, session_id: str) -> None:
        service = self.server.service
        session = service.sessions.get(session_id)
        document = self._read_json()
        started = time.perf_counter()
        job = service.executor.submit(
            lambda: session.freeze(document.get("files"))
        )
        result = self._wait_or_503("freeze", job)
        if result is None:
            return
        service.metrics.observe_request(
            "freeze", 200, time.perf_counter() - started
        )
        self._send_json(200, result)

    def _handle_anonymize(self, session_id: str) -> None:
        service = self.server.service
        if service.draining:
            return self._send_error_json(503, "service is draining")
        session = service.sessions.get(session_id)
        source = self.headers.get("X-Repro-Source", "<config>")
        idempotency_key = self.headers.get("X-Repro-Idempotency-Key") or None
        if self.headers.get("X-Repro-Corpus"):
            service.metrics.inc_counter("repro_corpus_files_total")
        if self.headers.get("X-Repro-Failover"):
            service.metrics.inc_counter("repro_corpus_failovers_total")
        text = self._read_body().decode("utf-8", errors="replace")
        fault_plan = session.anonymizer.fault_plan
        if fault_plan is not None and fault_plan.hang_worker_once(source):
            # Injected live-hang: wedge this worker's serve loops — the
            # process stays alive, the sockets stay bound, the heartbeat
            # stops.  Nothing inside the process recovers from this;
            # only the supervisor's watchdog can (SIGKILL + respawn).
            service.request_hang()
            self.close_connection = True
            return
        if fault_plan is not None and fault_plan.drop_connection_once(
            "pre-commit", source
        ):
            # Injected ambiguous failure: nothing was committed, so a
            # retry re-runs the work from scratch.
            self.close_connection = True
            return
        started = time.perf_counter()
        job = service.executor.submit(
            lambda: session.anonymize(
                text, source=source, idempotency_key=idempotency_key
            )
        )
        result = self._wait_or_503("anonymize", job)
        if result is None:
            return
        if fault_plan is not None and fault_plan.drop_connection_once(
            "post-commit", source
        ):
            # Injected ambiguous failure: the journal record is durably
            # committed but the response is lost.  A retry presenting the
            # same idempotency key gets the journaled result back.
            self.close_connection = True
            return
        service.metrics.observe_request(
            "anonymize", 200, time.perf_counter() - started
        )
        service.metrics.record_rule_hits(result["report"]["rule_hits"])
        self._send_json(200, result)

    def _wait_or_503(self, endpoint: str, job: _Job):
        """Wait out a job; on timeout abandon it and answer 503.

        The abandoned job may still complete inside a worker — its
        journal commit happens (making the retry idempotent) but its
        response is discarded, and the executor's gauges stay honest
        because the worker's in-flight accounting runs regardless.
        Returns ``None`` after answering the 503.
        """
        service = self.server.service
        try:
            return job.wait(service.request_timeout)
        except TimeoutError:
            job.abandon()
            service.metrics.inc_counter("repro_requests_timed_out_total")
            self._send_error_json(
                503,
                "{} did not complete within {:g}s; retry with the same "
                "idempotency key to pick up the committed result".format(
                    endpoint, service.request_timeout
                ),
                retry_after=1,
            )
            return None

    def _handle_state_export(self, session_id: str) -> None:
        service = self.server.service
        session = service.sessions.get(session_id)
        self._send_bytes(
            200, session.export_state().encode("utf-8"), "application/json"
        )
        service.metrics.observe_request("state", 200)

    def _handle_state_import(self, session_id: str) -> None:
        service = self.server.service
        session = service.sessions.get(session_id)
        session.import_state(self._read_body().decode("utf-8", errors="replace"))
        service.metrics.observe_request("state", 200)
        self._send_json(200, {"imported": True})

    def _send_counted(self, endpoint: str, document) -> None:
        self._send_json(200, document)
        self.server.service.metrics.observe_request(endpoint, 200)

    # -- body / response plumbing ---------------------------------------

    def _read_body(self) -> bytes:
        limit = self.server.service.max_request_bytes
        encoding = (self.headers.get("Transfer-Encoding") or "").lower()
        if "chunked" in encoding:
            return self._read_chunked(limit)
        length_header = self.headers.get("Content-Length")
        length = int(length_header) if length_header else 0
        if length > limit:
            raise RequestTooLargeError()
        if length <= 0:
            return b""
        return self.rfile.read(length)

    def _read_chunked(self, limit: int) -> bytes:
        """Decode a chunked request body (``http.server`` does not)."""
        data = bytearray()
        while True:
            size_line = self.rfile.readline(66)
            if b";" in size_line:  # chunk extensions
                size_line = size_line.split(b";", 1)[0]
            try:
                size = int(size_line.strip() or b"0", 16)
            except ValueError:
                raise SessionOptionsError("malformed chunked request body")
            if size == 0:
                while True:  # trailers, then the final blank line
                    line = self.rfile.readline(1024)
                    if line in (b"\r\n", b"\n", b""):
                        break
                return bytes(data)
            if len(data) + size > limit:
                raise RequestTooLargeError()
            chunk = self.rfile.read(size)
            if len(chunk) != size:
                raise SessionOptionsError("truncated chunked request body")
            data += chunk
            self.rfile.read(2)  # the CRLF after each chunk

    def _read_json(self) -> dict:
        body = self._read_body()
        try:
            document = json.loads(body.decode("utf-8", errors="replace") or "{}")
        except ValueError:
            raise SessionOptionsError("request body is not valid JSON")
        if not isinstance(document, dict):
            raise SessionOptionsError("request body must be a JSON object")
        return document

    def _send_json(self, code: int, document) -> None:
        self._send_bytes(
            code,
            json.dumps(document, sort_keys=True).encode("utf-8"),
            "application/json",
        )

    def _send_error_json(
        self,
        code: int,
        message: str,
        retry_after: Optional[int] = None,
        body_extra: Optional[dict] = None,
    ) -> None:
        # The request body may be partly unread on an error path; closing
        # the connection keeps HTTP/1.1 keep-alive framing honest.
        self.close_connection = True
        extra = {}
        if retry_after is not None:
            extra["Retry-After"] = str(retry_after)
        body = dict(body_extra or {}, error=message)
        self._send_bytes(
            code,
            json.dumps(body, sort_keys=True).encode("utf-8"),
            "application/json",
            extra_headers=extra,
        )
        endpoint = urlparse(self.path).path.split("/")
        name = endpoint[1] if len(endpoint) > 1 and endpoint[1] else "unknown"
        self.server.service.metrics.observe_request(name, code)

    def _send_bytes(
        self,
        code: int,
        body: bytes,
        content_type: str,
        extra_headers: Optional[dict] = None,
    ) -> None:
        if self.server.service.draining:
            # Never park a keep-alive connection on a draining daemon:
            # in-flight responses go out, then the connection closes so
            # server_close() is not held hostage by idle clients.
            self.close_connection = True
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (extra_headers or {}).items():
            self.send_header(key, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)


def _fetch_shard_snapshot(base_url: str, timeout: float = 2.0) -> Optional[Dict]:
    """One sibling worker's ``/metrics/local`` snapshot, or None.

    Any failure — connection refused while the worker respawns, a slow
    answer, garbage — degrades to "worker down" in the aggregate rather
    than failing the scrape.
    """
    parsed = urlparse(base_url)
    try:
        connection = http.client.HTTPConnection(
            parsed.hostname, parsed.port, timeout=timeout
        )
        try:
            connection.request("GET", "/metrics/local")
            response = connection.getresponse()
            if response.status != 200:
                return None
            document = json.loads(response.read().decode("utf-8"))
        finally:
            connection.close()
    except (OSError, ValueError, http.client.HTTPException):
        return None
    return document if isinstance(document, dict) else None


def _adopt_http_server(sock: socket.socket) -> "_ThreadingHTTPServer":
    """Wrap a pre-bound TCP socket in the threading HTTP server.

    The pre-fork supervisor binds sockets before forking (or a worker
    binds its own ``SO_REUSEPORT`` socket); either way the server must
    adopt the existing file descriptor instead of binding a fresh one.
    ``server_activate`` (re-)listens, which is idempotent for an
    already-listening inherited socket.
    """
    server = _ThreadingHTTPServer(
        sock.getsockname()[:2], ServiceRequestHandler, bind_and_activate=False
    )
    server.socket.close()
    server.socket = sock
    host, port = sock.getsockname()[:2]
    server.server_address = (host, port)
    server.server_name = host
    server.server_port = port
    server.server_activate()
    return server


class AnonymizationService:
    """One daemon process: transport + sessions + executor + metrics.

    Construct, then either :meth:`serve_forever` (the CLI) or
    :meth:`start_background` (tests).  :meth:`shutdown` performs the
    graceful drain in either case.

    In the pre-fork sharded daemon each worker process constructs one of
    these with *shard* (its :class:`~repro.service.sharding.ShardInfo`),
    *listen_socket* (the shared accept socket), and *direct_socket* (its
    own per-shard listener, used for redirects and metrics aggregation);
    ``workers`` here is the per-process request *thread* pool, not the
    process count — that lives in the supervisor.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_socket: Optional[str] = None,
        workers: int = 4,
        queue_limit: int = 16,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        max_sessions: int = 64,
        request_timeout: float = 300.0,
        state_dir: Optional[str] = None,
        snapshot_every: int = 64,
        shard: Optional[ShardInfo] = None,
        listen_socket: Optional[socket.socket] = None,
        direct_socket: Optional[socket.socket] = None,
        generation: int = 0,
        status_board=None,
        watchdog_timeout: float = 0.0,
        respawn_limit: Optional[int] = None,
    ):
        self.metrics = ServiceMetrics()
        for name, help_text in DURABILITY_COUNTERS + CORPUS_COUNTERS:
            self.metrics.register_counter(name, help_text)
        # Pre-seed every rule family this daemon can produce — the
        # builtin groupings plus each active recognizer plugin — so the
        # per-family hit counters render from the very first scrape
        # (no first-hit gaps in rate() queries or CI asserts).
        from repro.plugins import resolve_active_plugins

        self.active_plugins = tuple(
            plugin.family for plugin in resolve_active_plugins()
        )
        for family in (
            "token",
            "comment",
            "misc",
            "asn",
            "ip",
            "secret",
            "junos",
            "fail_closed",
        ) + self.active_plugins:
            self.metrics.register_rule_family(family)
        self.store: Optional[SessionStore] = None
        self.recovery_summary = None
        if state_dir is not None:
            # Recovery runs before the listener exists: a state dir the
            # daemon cannot trust must abort startup (JournalError
            # propagates to the CLI → EXIT_RECOVERY_FAILED), never serve.
            self.store = SessionStore(state_dir, snapshot_every=snapshot_every)
            self.recovery_summary = self.store.recover()
            if self.recovery_summary.torn_discarded:
                self.metrics.inc_counter(
                    "repro_service_journal_torn_discarded_total",
                    self.recovery_summary.torn_discarded,
                )
            if self.recovery_summary.quarantined:
                self.metrics.inc_counter(
                    "repro_service_journal_quarantined_total",
                    len(self.recovery_summary.quarantined),
                )
        self.sessions = SessionManager(
            max_sessions=max_sessions,
            store=self.store,
            metrics=self.metrics,
            snapshot_every=snapshot_every,
            shard=shard,
        )
        self.executor = BoundedExecutor(workers=workers, queue_limit=queue_limit)
        self.max_request_bytes = max_request_bytes
        self.request_timeout = request_timeout
        self.draining = False
        self.unix_socket = unix_socket
        self.shard = shard
        self.generation = generation
        #: Supervisor-shared heartbeat/counter slots (pre-fork mode only).
        self.status_board = status_board
        self.watchdog_timeout = watchdog_timeout
        self.respawn_limit = respawn_limit
        self._hang_forever = False
        if listen_socket is not None:
            self.httpd: _ThreadingHTTPServer = _adopt_http_server(listen_socket)
        elif unix_socket is not None:
            self.httpd = _UnixHTTPServer(unix_socket, ServiceRequestHandler)
        else:
            self.httpd = _ThreadingHTTPServer(
                (host, port), ServiceRequestHandler
            )
        self.httpd.service = self
        self.direct_httpd: Optional[_ThreadingHTTPServer] = None
        if direct_socket is not None:
            self.direct_httpd = _adopt_http_server(direct_socket)
            self.direct_httpd.service = self
        self.metrics.register_gauge(
            "repro_queue_depth",
            "Anonymization jobs waiting for a worker.",
            self.executor.depth,
        )
        self.metrics.register_gauge(
            "repro_requests_in_flight",
            "Anonymization jobs currently running.",
            self.executor.in_flight,
        )
        self.metrics.register_gauge(
            "repro_sessions",
            "Live anonymization sessions.",
            lambda: len(self.sessions),
        )
        self.metrics.register_gauge(
            "repro_disk_degraded",
            "Sessions parked read-only by a disk-level journal write "
            "failure (clears when an append succeeds again).",
            self.sessions.disk_degraded_count,
        )
        for family in self.active_plugins:
            self.metrics.register_labeled_gauge(
                "repro_active_plugins",
                "Recognizer plugin families composed into this daemon's "
                "rule pipeline (1 per active family and worker; "
                "aggregated scrapes sum to the worker count).",
                {"family": family},
                lambda: 1.0,
            )
        self.metrics.register_labeled_gauge(
            "repro_circuit_open",
            "Whether this shard's journal write path is open (any "
            "session disk-degraded); per-shard series merge across "
            "workers on the aggregated scrape.",
            {"shard": str(shard.index if shard is not None else 0)},
            lambda: 1.0 if self.sessions.disk_degraded_count() else 0.0,
        )
        if status_board is not None and shard is not None:
            # Each worker exposes only its OWN shard's series: the
            # aggregated scrape merges one series per live worker, so
            # the supervisor-owned counts are never multiplied by N.
            own = shard.index
            self.metrics.register_labeled_gauge(
                "repro_worker_respawns_total",
                "Times the supervisor respawned this shard's worker "
                "(pre-registered at 0; counted by the supervisor).",
                {"shard": str(own)},
                lambda: float(status_board.respawns(own)),
            )
            self.metrics.register_labeled_gauge(
                "repro_worker_hung_total",
                "Times the watchdog SIGKILLed this shard's worker for a "
                "stale heartbeat (hang, not crash).",
                {"shard": str(own)},
                lambda: float(status_board.hung(own)),
            )
        self._thread: Optional[threading.Thread] = None
        self._direct_thread: Optional[threading.Thread] = None

    # -- addressing ------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` for TCP, ``(socket path, 0)`` for Unix."""
        if self.unix_socket is not None:
            return (self.unix_socket, 0)
        return self.httpd.server_address[:2]

    @property
    def base_url(self) -> str:
        host, port = self.address
        if self.unix_socket is not None:
            return "unix://{}".format(host)
        return "http://{}:{}".format(host, port)

    # -- watchdog heartbeat ----------------------------------------------

    def heartbeat_tick(self) -> None:
        """Refresh this worker's heartbeat slot (called by every serve
        loop between accepts).  An injected live-hang wedges the caller
        right here — which is the point: the loop that would have beaten
        the heart is the loop that is stuck."""
        if self._hang_forever:
            while True:
                time.sleep(3600)
        if self.status_board is not None and self.shard is not None:
            self.status_board.beat(self.shard.index)

    def request_hang(self) -> None:
        """Arm the injected live-hang (``worker-hang`` fault): every
        serve loop wedges at its next ``heartbeat_tick``."""
        self._hang_forever = True

    # -- lifecycle -------------------------------------------------------

    def _start_direct(self) -> None:
        if self.direct_httpd is not None and self._direct_thread is None:
            thread = threading.Thread(
                target=self.direct_httpd.serve_forever,
                name="repro-shard-direct",
                daemon=True,
            )
            thread.start()
            self._direct_thread = thread

    def serve_forever(self) -> None:
        self._start_direct()
        self.httpd.serve_forever()

    def start_background(self) -> threading.Thread:
        self._start_direct()
        thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-service", daemon=True
        )
        thread.start()
        self._thread = thread
        return thread

    def begin_drain(self) -> None:
        """Flag the drain (healthz reports it; new work gets 503)."""
        self.draining = True

    def stop_serving(self) -> None:
        """Stop both accept loops (blocks until they have exited)."""
        self.httpd.shutdown()
        if self.direct_httpd is not None:
            self.direct_httpd.shutdown()

    def close_idle_connections(self) -> None:
        self.httpd.close_idle_connections()
        if self.direct_httpd is not None:
            self.direct_httpd.close_idle_connections()

    def drain_close(self) -> None:
        """After the accept loops stopped: join connections, drain work.

        Idle keep-alive connections are closed first so ``server_close``
        (which joins every connection thread) is not held hostage by a
        client parked between requests; connection threads mid-request
        finish — their queued jobs still complete because the executor
        is drained *after* — then the executor and sessions go.
        """
        self.close_idle_connections()
        self.httpd.server_close()
        if self.direct_httpd is not None:
            self.direct_httpd.server_close()
        self.executor.shutdown(wait=True)
        self.sessions.close_all()

    def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish in-flight, tear down."""
        self.begin_drain()
        self.stop_serving()
        self.drain_close()
        if self.unix_socket is not None:
            try:
                os.unlink(self.unix_socket)
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=10)
        if self._direct_thread is not None:
            self._direct_thread.join(timeout=10)
