"""Service sessions: long-lived anonymizers keyed by id + salt fingerprint.

A *session* is the daemon-resident analogue of one batch CLI run: an
:class:`~repro.core.engine.Anonymizer` constructed once (pass-list load,
rule compilation) and then reused for every request, which is the whole
point of running a daemon — the per-invocation setup cost the batch CLI
pays on every run is paid once per session.

Sessions follow the same determinism contract as the batch pipeline:

* An **unfrozen** session maps lazily; output depends on request order
  (exactly like the one-pass CLI).  Fine for exploration.
* A **frozen** session ran :meth:`Anonymizer.freeze_mappings` over an
  uploaded corpus manifest.  After the freeze every mapping is a pure
  function of (salt, input), so files may be submitted in any order, over
  any number of connections, and the output is byte-identical to the
  batch ``--jobs N`` run over the same corpus — the service's headline
  invariant.

The anonymizer's shared maps are not thread-safe, so each session owns a
lock and requests against one session serialize; different sessions
proceed in parallel.  Determinism never depends on that lock — it comes
from the freeze — the lock only protects the report accumulators and
lazy cache fills from torn updates.

Every request is fail-closed end to end: per-line rule exceptions are
already absorbed by the engine (salted placeholder line + flag), and a
file-level failure (e.g. a crashing comment stripper) replaces *every*
line with the salted placeholder and flags the file — the raw input is
never echoed back, and the handler never turns it into a 500.
"""

from __future__ import annotations

import threading
import uuid
from typing import Dict, List, Optional

from repro.core import Anonymizer, AnonymizerConfig
from repro.core.report import AnonymizationReport
from repro.core.runner import salt_fingerprint
from repro.core.state import export_state_json, import_state_json

__all__ = [
    "SESSION_OPTION_KEYS",
    "Session",
    "SessionError",
    "SessionManager",
    "SessionOptionsError",
    "SessionStateError",
    "UnknownSessionError",
]

#: AnonymizerConfig knobs a client may set at session creation.  Anything
#: else (notably ``jobs``/``two_pass``, which are batch-pipeline shape
#: knobs, not per-session policy) is rejected with a clear error.
SESSION_OPTION_KEYS = frozenset(
    {
        "hash_length",
        "regex_style",
        "subnet_shaping",
        "class_preserving",
        "preserve_specials",
        "ip_collision_policy",
        "strip_comments",
        "anonymize_private_asns",
        "syntax",
        "fault_plan",  # test seam: deterministic fault injection
    }
)


class SessionError(ValueError):
    """A session request cannot be served (maps to a 4xx, never a 500)."""


class UnknownSessionError(SessionError):
    """No session with that id (expired, drained, or never created)."""


class SessionOptionsError(SessionError):
    """The session-creation options are invalid."""


class SessionStateError(SessionError):
    """A state import/export failed (corrupt or incompatible document)."""


class Session:
    """One live anonymizer plus its serialization lock and counters."""

    def __init__(self, session_id: str, anonymizer: Anonymizer):
        self.id = session_id
        self.anonymizer = anonymizer
        self.fingerprint = salt_fingerprint(anonymizer.config.salt)
        self.lock = threading.Lock()
        self.requests_served = 0
        self.lines_served = 0
        self.files_failed_closed = 0

    # -- info ------------------------------------------------------------

    def describe(self) -> Dict:
        """JSON-able session info (never the salt or any mapped value)."""
        with self.lock:
            stats = self.anonymizer.last_freeze_stats
            return {
                "id": self.id,
                "salt_fingerprint": self.fingerprint,
                "frozen": self.anonymizer.frozen,
                "requests_served": self.requests_served,
                "lines_served": self.lines_served,
                "files_failed_closed": self.files_failed_closed,
                "freeze_stats": None
                if stats is None
                else {
                    "addresses": stats.addresses,
                    "system_ids": stats.system_ids,
                    "words_warmed": stats.words_warmed,
                    "asns_warmed": stats.asns_warmed,
                    "communities_warmed": stats.communities_warmed,
                },
            }

    # -- lifecycle -------------------------------------------------------

    def freeze(self, files: Dict[str, str]) -> Dict:
        """Freeze all mapping state over an uploaded corpus manifest."""
        if not isinstance(files, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in files.items()
        ):
            raise SessionOptionsError(
                "freeze body must be a JSON object {name: text, ...}"
            )
        with self.lock:
            if self.anonymizer.frozen:
                raise SessionError(
                    "session {} is already frozen; create a new session to "
                    "freeze over a different corpus".format(self.id)
                )
            stats = self.anonymizer.freeze_mappings(files)
        return {
            "frozen": True,
            "addresses": stats.addresses,
            "system_ids": stats.system_ids,
            "words_warmed": stats.words_warmed,
            "asns_warmed": stats.asns_warmed,
            "communities_warmed": stats.communities_warmed,
        }

    # -- anonymization ---------------------------------------------------

    def anonymize(self, text: str, source: str = "<config>") -> Dict:
        """Anonymize one file's text; always returns, never re-raises.

        Returns ``{"status", "source", "text", "report"}`` where status is
        ``"ok"`` or ``"fail_closed"`` (file-level failure: every line is
        the salted placeholder).  The report is the per-file report dict —
        counters, rule hits, and the leak-highlight ``flags`` — which by
        construction never contains raw input.
        """
        with self.lock:
            try:
                out, file_report = self.anonymizer.anonymize_file(
                    text, source=source
                )
                status = "ok"
            except Exception as exc:
                out, file_report = self._fail_closed_file(text, source, exc)
                status = "fail_closed"
                self.files_failed_closed += 1
            self.anonymizer.report.merge(file_report)
            self.requests_served += 1
            self.lines_served += file_report.lines_in
        return {
            "status": status,
            "source": source,
            "text": out,
            "report": file_report.to_dict(),
        }

    def _fail_closed_file(self, text: str, source: str, exc: Exception):
        """Whole-file fail-closed replacement (mirrors the engine's
        per-line guarantee at file granularity): every input line becomes
        the salted placeholder, and the report flags the event with the
        exception class only — its message may quote raw input."""
        lines = text.splitlines()
        placeholder = self.anonymizer.fail_closed_placeholder
        out_lines = [placeholder(line) for line in lines]
        report = AnonymizationReport()
        report.lines_in = len(lines)
        report.lines_out = len(out_lines)
        report.lines_failed_closed = len(lines)
        report.record_rule_hit("FAIL-CLOSED", max(len(lines), 1))
        report.flag(
            source,
            0,
            "FAIL-CLOSED",
            "entire file replaced by fail-closed placeholders after "
            "{}".format(type(exc).__name__),
        )
        out = "\n".join(out_lines)
        if text.endswith("\n"):
            out += "\n"
        return out, report

    # -- state persistence ----------------------------------------------

    def export_state(self) -> str:
        with self.lock:
            return export_state_json(self.anonymizer)

    def import_state(self, text: str) -> None:
        from repro.core.state import StateError

        with self.lock:
            try:
                import_state_json(self.anonymizer, text)
            except StateError as exc:
                raise SessionStateError(str(exc)) from exc


class SessionManager:
    """Registry of live sessions; all operations are thread-safe."""

    def __init__(self, max_sessions: int = 64):
        self.max_sessions = max_sessions
        self._lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def create(self, salt: str, options: Optional[Dict] = None) -> Session:
        """Create a session for *salt* with the given config options."""
        if not isinstance(salt, str) or not salt:
            raise SessionOptionsError("a non-empty string salt is required")
        options = dict(options or {})
        unknown = set(options) - SESSION_OPTION_KEYS
        if unknown:
            raise SessionOptionsError(
                "unknown session options: {} (allowed: {})".format(
                    ", ".join(sorted(unknown)),
                    ", ".join(sorted(SESSION_OPTION_KEYS)),
                )
            )
        try:
            config = AnonymizerConfig(salt=salt.encode("utf-8"), **options)
            anonymizer = Anonymizer(config)
        except (TypeError, ValueError) as exc:
            raise SessionOptionsError(
                "invalid session options: {}".format(exc)
            ) from exc
        session = Session(uuid.uuid4().hex[:12], anonymizer)
        with self._lock:
            if len(self._sessions) >= self.max_sessions:
                raise SessionError(
                    "session limit reached ({}); delete a session "
                    "first".format(self.max_sessions)
                )
            self._sessions[session.id] = session
        return session

    def get(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(
                "no session {!r} (expired, drained, or never "
                "created)".format(session_id)
            )
        return session

    def delete(self, session_id: str) -> Dict:
        """Drain and remove a session.

        The session is unregistered first (new requests get 404), then the
        session lock is taken so any in-flight request finishes before the
        mapping state is dropped.
        """
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise UnknownSessionError(
                "no session {!r} (expired, drained, or never "
                "created)".format(session_id)
            )
        with session.lock:  # wait out in-flight requests
            info = {
                "id": session.id,
                "requests_served": session.requests_served,
                "lines_served": session.lines_served,
            }
        return info

    def list(self) -> List[Dict]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [session.describe() for session in sessions]

    def close_all(self) -> None:
        """Drain every session (used by graceful shutdown)."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            with session.lock:
                pass
