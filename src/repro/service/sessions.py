"""Service sessions: long-lived anonymizers keyed by id + salt fingerprint.

A *session* is the daemon-resident analogue of one batch CLI run: an
:class:`~repro.core.engine.Anonymizer` constructed once (pass-list load,
rule compilation) and then reused for every request, which is the whole
point of running a daemon — the per-invocation setup cost the batch CLI
pays on every run is paid once per session.

Sessions follow the same determinism contract as the batch pipeline:

* An **unfrozen** session maps lazily; output depends on request order
  (exactly like the one-pass CLI).  Fine for exploration.
* A **frozen** session ran :meth:`Anonymizer.freeze_mappings` over an
  uploaded corpus manifest.  After the freeze every mapping is a pure
  function of (salt, input), so files may be submitted in any order, over
  any number of connections, and the output is byte-identical to the
  batch ``--jobs N`` run over the same corpus — the service's headline
  invariant.

The anonymizer's shared maps are not thread-safe, so each session owns a
lock and requests against one session serialize; different sessions
proceed in parallel.  Determinism never depends on that lock — it comes
from the freeze — the lock only protects the report accumulators and
lazy cache fills from torn updates.

Every request is fail-closed end to end: per-line rule exceptions are
already absorbed by the engine (salted placeholder line + flag), and a
file-level failure (e.g. a crashing comment stripper) replaces *every*
line with the salted placeholder and flags the file — the raw input is
never echoed back, and the handler never turns it into a 500.
"""

from __future__ import annotations

import json
import threading
import uuid
from typing import Dict, List, Optional

from repro.core import Anonymizer, AnonymizerConfig
from repro.core.engine import FreezeStats
from repro.core.report import AnonymizationReport
from repro.core.runner import salt_fingerprint
from repro.service.journal import JournalDiskError
from repro.core.state import (
    StateCursor,
    export_state,
    export_state_json,
    import_state_json,
    state_delta_since,
)

__all__ = [
    "SESSION_OPTION_KEYS",
    "Session",
    "SessionError",
    "SessionManager",
    "SessionOptionsError",
    "SessionStateError",
    "UnknownSessionError",
]

#: AnonymizerConfig knobs a client may set at session creation.  Anything
#: else (notably ``jobs``/``two_pass``, which are batch-pipeline shape
#: knobs, not per-session policy) is rejected with a clear error.
SESSION_OPTION_KEYS = frozenset(
    {
        "hash_length",
        "regex_style",
        "subnet_shaping",
        "class_preserving",
        "preserve_specials",
        "ip_collision_policy",
        "strip_comments",
        "anonymize_private_asns",
        "syntax",
        "plugins",  # recognizer plugin families for this session's pipeline
        "fault_plan",  # test seam: deterministic fault injection
    }
)


class SessionError(ValueError):
    """A session request cannot be served (maps to a 4xx, never a 500)."""


class UnknownSessionError(SessionError):
    """No session with that id (expired, drained, or never created)."""


class SessionOptionsError(SessionError):
    """The session-creation options are invalid."""


class SessionStateError(SessionError):
    """A state import/export failed (corrupt or incompatible document)."""


class Session:
    """One live anonymizer plus its serialization lock and counters.

    With a *journal* attached (daemon started with ``--state-dir``),
    every mutating operation appends a fsync'd journal record — the
    mapping-state delta plus the request result — *before* returning, so
    an acknowledged request always survives a crash.  The per-request
    results are also indexed by idempotency key: a resubmission of an
    already-committed (source, content) pair returns the journaled
    result without touching the engine.
    """

    def __init__(self, session_id: str, anonymizer: Anonymizer, journal=None,
                 metrics=None):
        self.id = session_id
        self.anonymizer = anonymizer
        self.fingerprint = salt_fingerprint(anonymizer.config.salt)
        self.lock = threading.Lock()
        self.requests_served = 0
        self.lines_served = 0
        self.files_failed_closed = 0
        self.idempotent_replays = 0
        self.requests_replayed = 0
        self.journal = journal
        self.snapshot_every = 64
        #: True while the last journal append failed at the disk level
        #: (ENOSPC/EIO).  The session is parked read-only: mutating
        #: requests answer 507 + Retry-After, and the next successful
        #: append clears the flag — the client's retry *is* the
        #: half-open probe.
        self.disk_degraded = False
        self._metrics = metrics
        self._committed: Dict[str, Dict] = {}
        self._cursor = StateCursor(anonymizer)
        #: A freeze record whose journal append hit a disk error.  The
        #: in-memory freeze cannot be undone, so the exact record is
        #: retained and re-appended before the next successful commit —
        #: replay then still sees the freeze in order.
        self._pending_freeze: Optional[Dict] = None

    # -- journal plumbing -------------------------------------------------

    def _inc_metric(self, name: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.inc_counter(name, amount)

    def _journal_append(self, record: Dict, source: str) -> None:
        """Durably commit one operation (call with the lock held).

        A disk-level failure (:class:`JournalDiskError`) marks the
        session ``disk_degraded`` and re-raises — the handler maps it to
        507 + Retry-After.  A later successful append clears the flag.
        """
        try:
            self._flush_pending_freeze()
            self.journal.append(
                record,
                fault_plan=self.anonymizer.fault_plan,
                fault_source=source,
            )
        except JournalDiskError:
            self.disk_degraded = True
            raise
        self.disk_degraded = False
        self._cursor = StateCursor(self.anonymizer)
        self._inc_metric("repro_service_journal_records_total")
        if self.journal.appended_since_snapshot >= self.snapshot_every:
            self._write_snapshot()

    def _flush_pending_freeze(self) -> None:
        """Re-append a freeze record whose original append hit a disk
        error (call with the lock held; raises on continued failure)."""
        if self._pending_freeze is None:
            return
        self.journal.append(
            self._pending_freeze,
            fault_plan=self.anonymizer.fault_plan,
            fault_source="<freeze>",
        )
        self._pending_freeze = None
        self._inc_metric("repro_service_journal_records_total")

    def _write_snapshot(self) -> None:
        stats = self.anonymizer.last_freeze_stats
        try:
            self.journal.write_snapshot(
                {
                    "salt_fingerprint": self.fingerprint,
                    "state": export_state(self.anonymizer),
                    "frozen": self.anonymizer.frozen,
                    "freeze_stats": None if stats is None else _stats_dict(stats),
                    "committed": self._committed,
                },
                fault_plan=self.anonymizer.fault_plan,
            )
        except (JournalDiskError, OSError):
            # Non-fatal: every record this snapshot would cover is
            # already fsync'd in the journal.  Count the failure and
            # retry at the next boundary (appended_since_snapshot keeps
            # growing, so the next append triggers another attempt).
            self._inc_metric("repro_service_journal_snapshot_failures_total")
            return
        self._inc_metric("repro_service_journal_snapshots_total")

    def restore_replay(self, replay: Dict) -> None:
        """Adopt the outcome of a journal replay (resume path)."""
        self._committed = dict(replay.get("committed") or {})
        self.requests_replayed = int(replay.get("requests_replayed", 0))
        stats = replay.get("freeze_stats")
        if replay.get("frozen") and stats is not None:
            self.anonymizer.last_freeze_stats = FreezeStats(**stats)
        self._cursor = StateCursor(self.anonymizer)

    # -- info ------------------------------------------------------------

    def describe(self) -> Dict:
        """JSON-able session info (never the salt or any mapped value)."""
        with self.lock:
            stats = self.anonymizer.last_freeze_stats
            return {
                "id": self.id,
                "salt_fingerprint": self.fingerprint,
                "frozen": self.anonymizer.frozen,
                "active_plugins": list(self.anonymizer.active_plugin_families),
                "durable": self.journal is not None,
                "disk_degraded": self.disk_degraded,
                "requests_served": self.requests_served,
                "requests_replayed": self.requests_replayed,
                "idempotent_replays": self.idempotent_replays,
                "lines_served": self.lines_served,
                "files_failed_closed": self.files_failed_closed,
                "freeze_stats": None if stats is None else _stats_dict(stats),
            }

    # -- lifecycle -------------------------------------------------------

    def freeze(self, files: Dict[str, str]) -> Dict:
        """Freeze all mapping state over an uploaded corpus manifest."""
        if not isinstance(files, dict) or not all(
            isinstance(k, str) and isinstance(v, str) for k, v in files.items()
        ):
            raise SessionOptionsError(
                "freeze body must be a JSON object {name: text, ...}"
            )
        with self.lock:
            if self.anonymizer.frozen:
                if self._pending_freeze is not None:
                    # The earlier freeze answered 507: its in-memory
                    # state transition happened but the journal record
                    # never landed.  This retry is the half-open probe —
                    # flush the retained record now, or park again.
                    try:
                        self._flush_pending_freeze()
                    except JournalDiskError:
                        self.disk_degraded = True
                        raise
                    self.disk_degraded = False
                    stats = self.anonymizer.last_freeze_stats
                    return dict(
                        {} if stats is None else _stats_dict(stats),
                        frozen=True,
                    )
                raise SessionError(
                    "session {} is already frozen; create a new session to "
                    "freeze over a different corpus".format(self.id)
                )
            stats = self.anonymizer.freeze_mappings(files)
            if self.journal is not None:
                record = {
                    "op": "freeze",
                    "delta": state_delta_since(self.anonymizer, self._cursor),
                    "stats": _stats_dict(stats),
                }
                try:
                    self._journal_append(record, source="<freeze>")
                except JournalDiskError:
                    # The in-memory freeze cannot be undone.  Retain the
                    # exact record and advance the cursor so later deltas
                    # exclude it; it is re-appended before the next
                    # successful commit (or by a freeze retry above).
                    self._pending_freeze = record
                    self._cursor = StateCursor(self.anonymizer)
                    raise
        return dict(_stats_dict(stats), frozen=True)

    # -- anonymization ---------------------------------------------------

    def anonymize(
        self,
        text: str,
        source: str = "<config>",
        idempotency_key: Optional[str] = None,
    ) -> Dict:
        """Anonymize one file's text; always returns, never re-raises.

        Returns ``{"status", "source", "text", "report"}`` where status is
        ``"ok"`` or ``"fail_closed"`` (file-level failure: every line is
        the salted placeholder).  The report is the per-file report dict —
        counters, rule hits, and the leak-highlight ``flags`` — which by
        construction never contains raw input.

        With a journal attached and an *idempotency_key* the daemon has
        already committed, the journaled result is returned verbatim
        (plus ``"replayed": true``) and the engine is not touched — a
        client retrying after an ambiguous failure never double-maps.
        """
        with self.lock:
            if (
                self.journal is not None
                and idempotency_key
                and idempotency_key in self._committed
            ):
                self.idempotent_replays += 1
                self.requests_served += 1
                self._inc_metric("repro_idempotent_replays_total")
                return dict(self._committed[idempotency_key], replayed=True)
            try:
                out, file_report = self.anonymizer.anonymize_file(
                    text, source=source
                )
                status = "ok"
            except Exception as exc:
                out, file_report = self._fail_closed_file(text, source, exc)
                status = "fail_closed"
                self.files_failed_closed += 1
            result = {
                "status": status,
                "source": source,
                "text": out,
                "report": file_report.to_dict(),
            }
            if self.journal is not None:
                # Commit before acknowledging: the response is only sent
                # after this record is on disk (fsync), so a crash can
                # lose at most an *unacknowledged* request.  The key goes
                # into the committed map first so a snapshot triggered by
                # this very append (which truncates the journal record
                # carrying the key) still covers it; a failed append
                # rolls the entry back out.
                if idempotency_key:
                    self._committed[idempotency_key] = result
                try:
                    self._journal_append(
                        {
                            "op": "anonymize",
                            "key": idempotency_key,
                            "source": source,
                            "delta": state_delta_since(self.anonymizer, self._cursor),
                            "result": result,
                        },
                        source=source,
                    )
                except Exception:
                    if idempotency_key:
                        self._committed.pop(idempotency_key, None)
                    raise
            self.anonymizer.report.merge(file_report)
            self.requests_served += 1
            self.lines_served += file_report.lines_in
        return result

    def _fail_closed_file(self, text: str, source: str, exc: Exception):
        """Whole-file fail-closed replacement (mirrors the engine's
        per-line guarantee at file granularity): every input line becomes
        the salted placeholder, and the report flags the event with the
        exception class only — its message may quote raw input."""
        lines = text.splitlines()
        placeholder = self.anonymizer.fail_closed_placeholder
        out_lines = [placeholder(line) for line in lines]
        report = AnonymizationReport()
        report.lines_in = len(lines)
        report.lines_out = len(out_lines)
        report.lines_failed_closed = len(lines)
        report.record_rule_hit("FAIL-CLOSED", max(len(lines), 1))
        report.flag(
            source,
            0,
            "FAIL-CLOSED",
            "entire file replaced by fail-closed placeholders after "
            "{}".format(type(exc).__name__),
        )
        out = "\n".join(out_lines)
        if text.endswith("\n"):
            out += "\n"
        return out, report

    # -- state persistence ----------------------------------------------

    def export_state(self) -> str:
        with self.lock:
            return export_state_json(self.anonymizer)

    def import_state(self, text: str) -> None:
        from repro.core.state import StateError

        with self.lock:
            try:
                import_state_json(self.anonymizer, text)
            except StateError as exc:
                raise SessionStateError(str(exc)) from exc
            if self.journal is not None:
                self._journal_append(
                    {"op": "import", "state": json.loads(text)},
                    source="<import>",
                )


def _stats_dict(stats: FreezeStats) -> Dict:
    return {
        "addresses": stats.addresses,
        "system_ids": stats.system_ids,
        "words_warmed": stats.words_warmed,
        "asns_warmed": stats.asns_warmed,
        "communities_warmed": stats.communities_warmed,
    }


class SessionManager:
    """Registry of live sessions; all operations are thread-safe.

    With a :class:`~repro.service.journal.SessionStore` attached, new
    sessions get a write-ahead journal, ``delete`` removes the durable
    history (the owner is done with it), and :meth:`resume` brings a
    recovered session back to life after the owner re-presents the salt.
    """

    def __init__(self, max_sessions: int = 64, store=None, metrics=None,
                 snapshot_every: int = 64, shard=None):
        self.max_sessions = max_sessions
        self.store = store
        self.metrics = metrics
        self.snapshot_every = snapshot_every
        #: A :class:`~repro.service.sharding.ShardInfo` in the pre-fork
        #: daemon: new session ids are drawn until this worker owns them,
        #: so whichever worker fields the create also serves the session.
        self.shard = shard
        self._lock = threading.Lock()
        self._resume_lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}

    def _new_session_id(self) -> str:
        """A fresh id this manager's shard owns (rejection sampling).

        With N shards the expected draw count is N — microseconds next
        to building the Anonymizer — and it keeps shard assignment a
        pure function of the id, with no routing table to persist.
        """
        while True:
            session_id = uuid.uuid4().hex[:12]
            if self.shard is None or self.shard.owns(session_id):
                return session_id

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def _build_anonymizer(self, salt: str, options: Dict) -> Anonymizer:
        if not isinstance(salt, str) or not salt:
            raise SessionOptionsError("a non-empty string salt is required")
        unknown = set(options) - SESSION_OPTION_KEYS
        if unknown:
            raise SessionOptionsError(
                "unknown session options: {} (allowed: {})".format(
                    ", ".join(sorted(unknown)),
                    ", ".join(sorted(SESSION_OPTION_KEYS)),
                )
            )
        try:
            config = AnonymizerConfig(salt=salt.encode("utf-8"), **options)
            return Anonymizer(config)
        except (TypeError, ValueError) as exc:
            raise SessionOptionsError(
                "invalid session options: {}".format(exc)
            ) from exc

    def _register(self, session: Session, discard_on_limit: bool = False) -> None:
        """Publish *session*; on a full registry, fail without data loss.

        *discard_on_limit* is True only for brand-new sessions, whose
        just-created durable directory holds no history worth keeping.
        A *resumed* session's directory is the owner's only copy of its
        mapping history, so it is closed but kept — the resume can be
        retried after the client deletes another session.
        """
        with self._lock:
            if len(self._sessions) >= self.max_sessions:
                if session.journal is not None:
                    session.journal.close()
                    if discard_on_limit and self.store is not None:
                        self.store.discard(session.id)
                raise SessionError(
                    "session limit reached ({}); delete a session "
                    "first".format(self.max_sessions)
                )
            self._sessions[session.id] = session

    def create(self, salt: str, options: Optional[Dict] = None) -> Session:
        """Create a session for *salt* with the given config options."""
        options = dict(options or {})
        anonymizer = self._build_anonymizer(salt, options)
        session_id = self._new_session_id()
        journal = None
        if self.store is not None:
            # The fault plan is a test seam, not session policy: persisting
            # it would re-inject the fault on every resume of the session.
            persisted = {k: v for k, v in options.items() if k != "fault_plan"}
            journal = self.store.create_journal(
                session_id,
                salt_fingerprint(anonymizer.config.salt),
                persisted,
                active_plugins=list(anonymizer.active_plugin_families),
            )
        session = Session(
            session_id, anonymizer, journal=journal, metrics=self.metrics
        )
        session.snapshot_every = self.snapshot_every
        self._register(session, discard_on_limit=True)
        return session

    def resume(self, salt: str, session_id: str) -> Session:
        """Resume a recovered session: verify the salt, replay history.

        Idempotent: resuming an already-live session with the right salt
        returns it (so a retrying client that crossed a daemon restart
        can blindly re-send its resume).  Every failure is fail-closed —
        wrong salt, quarantined or unknown history — and leaves nothing
        half-registered.
        """
        from repro.service.journal import RecoveryError, replay_into

        if not isinstance(salt, str) or not salt:
            raise SessionOptionsError("a non-empty string salt is required")
        with self._resume_lock:
            with self._lock:
                live = self._sessions.get(session_id)
            if live is not None:
                if live.fingerprint != salt_fingerprint(
                    salt.encode("utf-8")
                ):
                    raise RecoveryError(
                        "session {} is live under a different salt".format(
                            session_id
                        )
                    )
                return live
            if self.store is None:
                raise UnknownSessionError(
                    "no session {!r} and this daemon has no --state-dir to "
                    "resume from".format(session_id)
                )
            reason = self.store.quarantine_reason(session_id)
            if reason is not None:
                raise RecoveryError(
                    "session {} was quarantined at recovery ({}); refusing "
                    "to guess its state".format(session_id, reason)
                )
            recovered = self.store.recoverable(session_id)
            if recovered is None:
                raise UnknownSessionError(
                    "no session {!r} (expired, deleted, or never "
                    "created)".format(session_id)
                )
            anonymizer = self._build_anonymizer(salt, recovered.options)
            replay = replay_into(anonymizer, recovered)
            from repro.service.journal import SessionJournal

            journal = SessionJournal(recovered.directory)
            journal.resume_appending(recovered.valid_length, replay["seq"])
            session = Session(
                session_id, anonymizer, journal=journal, metrics=self.metrics
            )
            session.snapshot_every = self.snapshot_every
            session.restore_replay(replay)
            self._register(session)
            self.store.summary.recoverable.pop(session_id, None)
            if self.metrics is not None:
                self.metrics.inc_counter("repro_session_recoveries_total")
            return session

    def is_recoverable(self, session_id: str) -> bool:
        return self.store is not None and self.store.is_recoverable(session_id)

    def disk_degraded_count(self) -> int:
        """Sessions currently parked read-only by a disk-level write
        failure (drives the ``repro_disk_degraded`` gauge)."""
        with self._lock:
            sessions = list(self._sessions.values())
        return sum(1 for session in sessions if session.disk_degraded)

    def get(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            error = UnknownSessionError(
                "no session {!r} (expired, drained, or never "
                "created)".format(session_id)
            )
            error.recoverable = self.is_recoverable(session_id)
            raise error
        return session

    def delete(self, session_id: str) -> Dict:
        """Drain and remove a session (and its durable history).

        The session is unregistered first (new requests get 404), then the
        session lock is taken so any in-flight request finishes before the
        mapping state is dropped.
        """
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise UnknownSessionError(
                "no session {!r} (expired, drained, or never "
                "created)".format(session_id)
            )
        with session.lock:  # wait out in-flight requests
            info = {
                "id": session.id,
                "requests_served": session.requests_served,
                "lines_served": session.lines_served,
            }
            if session.journal is not None:
                session.journal.close()
                if self.store is not None:
                    self.store.discard(session_id)
        return info

    def list(self) -> List[Dict]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [session.describe() for session in sessions]

    def close_all(self) -> None:
        """Drain every session (used by graceful shutdown).

        Journals are closed but *kept*: a drained daemon's sessions stay
        resumable after the next start — that is the durability contract.
        """
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            with session.lock:
                if session.journal is not None:
                    session.journal.close()
