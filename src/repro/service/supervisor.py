"""The pre-fork supervisor: N worker processes behind one socket.

``repro-anonymize serve --workers N`` (N >= 2) escapes the single-GIL
ceiling of the threaded daemon: a parent process binds the listening
socket(s), forks N workers, and from then on only supervises — every
byte of request traffic is handled inside a worker.  The design:

**Socket strategy.**  With ``SO_REUSEPORT`` (Linux >= 3.9; the ``auto``
default uses it when present) each worker binds its *own* listening
socket to the shared address and the kernel load-balances incoming
connections across them; the parent holds a bound-but-never-listening
reservation socket so the port cannot be stolen while workers respawn.
Without it (``--socket-strategy inherit``) the parent binds + listens
once and every forked worker accepts on the inherited descriptor — one
shared accept queue.  Either way a connection lands on an arbitrary
worker; session *requests* are then routed by shard (below).

**Sharding.**  Sessions are assigned to workers by a stable hash of the
session id (:func:`repro.service.sharding.shard_for`).  Each worker also
listens on a private per-shard address (bound by the parent before the
fork, so every worker knows the full table); a request that lands on the
wrong worker is answered ``307 Temporary Redirect`` +
``X-Repro-Shard`` pointing at the owner's direct address — the client
library follows it once and pins the affinity.  Under ``--state-dir``
worker *i* owns ``state-dir/shard-0i/`` exclusively: its journals, its
snapshots, its recovery.  Killing one worker mid-write tears one
shard's journal tail and nobody else's.

**Supervision.**  SIGTERM/SIGINT fan out to every worker, each drains
gracefully (in-flight requests finish), and the parent exits 0 once all
are reaped.  A worker that dies any other way is respawned with the
*same shard index* — the replacement re-runs recovery over exactly its
shard's journals, while the surviving shards keep serving throughout.
Fault plans (``REPRO_FAULT_PLAN``) are one-shot per supervisor run: the
injected fault fires in the original worker, and respawned workers start
clean, so chaos drills converge instead of crash-looping.  Respawns are
budgeted (:data:`RESPAWN_LIMIT` per shard) so a genuinely broken worker
becomes a loud exit, not an infinite fork loop.
"""

from __future__ import annotations

import os
import select
import signal
import socket
import sys
import threading
import time
import traceback
from typing import Dict, List, Optional, Tuple

from repro.core.faults import FAULT_PLAN_ENV
from repro.core.status import (
    EXIT_JOURNAL_CORRUPT,
    EXIT_OK,
    EXIT_RECOVERY_FAILED,
)
from repro.service.sharding import (
    ShardInfo,
    TopologyError,
    check_topology,
    shard_state_dir,
    write_topology,
)
from repro.service.watchdog import WorkerStatusBoard

__all__ = ["RESPAWN_LIMIT", "resolve_socket_strategy", "run_supervisor"]

#: Respawns allowed per shard before the supervisor declares a crash
#: loop and tears the daemon down (fail loudly, never fork forever).
RESPAWN_LIMIT = 20

#: Worker exit codes that must not be answered with a respawn: the
#: replacement would hit the identical condition immediately.
_FATAL_EXITS = frozenset({EXIT_RECOVERY_FAILED, EXIT_JOURNAL_CORRUPT})

_READY_TIMEOUT = 60.0


def resolve_socket_strategy(requested: str) -> str:
    """``auto`` becomes ``reuseport`` where the kernel supports it."""
    if requested == "auto":
        return "reuseport" if hasattr(socket, "SO_REUSEPORT") else "inherit"
    if requested == "reuseport" and not hasattr(socket, "SO_REUSEPORT"):
        raise ValueError(
            "--socket-strategy reuseport requested but this platform has "
            "no SO_REUSEPORT; use inherit"
        )
    return requested


def _bind_tcp(
    host: str, port: int, reuseport: bool = False, listen: bool = True
) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    if reuseport:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    if listen:
        sock.listen(128)
    return sock


def _worker_process(
    index: int,
    args,
    strategy: str,
    bind_address: Tuple[str, int],
    shared_socket: Optional[socket.socket],
    direct_socket: socket.socket,
    shard: ShardInfo,
    generation: int,
    ready_fd: int,
    board: Optional[WorkerStatusBoard] = None,
) -> int:
    """Run one worker (inside the forked child); returns its exit code."""
    from repro.service.journal import JournalError
    from repro.service.server import AnonymizationService

    if strategy == "reuseport":
        listen_socket = _bind_tcp(*bind_address, reuseport=True, listen=True)
    else:
        listen_socket = shared_socket
    state_dir = (
        str(shard_state_dir(args.state_dir, index))
        if args.state_dir is not None
        else None
    )
    try:
        service = AnonymizationService(
            workers=args.threads,
            queue_limit=args.queue_limit,
            max_request_bytes=args.max_request_bytes,
            max_sessions=args.max_sessions,
            request_timeout=args.request_timeout,
            state_dir=state_dir,
            snapshot_every=args.snapshot_every,
            shard=shard,
            listen_socket=listen_socket,
            direct_socket=direct_socket,
            generation=generation,
            status_board=board,
            watchdog_timeout=getattr(args, "watchdog_timeout", 0.0),
            respawn_limit=RESPAWN_LIMIT,
        )
    except JournalError as exc:
        print(
            "worker {}: state recovery failed: {}".format(index, exc),
            file=sys.stderr,
            flush=True,
        )
        os.write(ready_fd, b"F")
        os.close(ready_fd)
        return EXIT_RECOVERY_FAILED
    summary = service.recovery_summary
    if summary is not None and (summary.recoverable or summary.quarantined):
        print(
            "worker {} (shard {}): state recovery: {}".format(
                index, index, summary.describe()
            ),
            flush=True,
        )
        for session_id, reason in sorted(summary.quarantined.items()):
            print(
                "worker {}: quarantined session {}: {}".format(
                    index, session_id, reason
                ),
                file=sys.stderr,
                flush=True,
            )
    if args.strict_recovery and summary is not None and summary.quarantined:
        print(
            "worker {}: --strict-recovery set and {} session(s) were "
            "quarantined under {}".format(
                index, len(summary.quarantined), state_dir
            ),
            file=sys.stderr,
            flush=True,
        )
        service.drain_close()
        os.write(ready_fd, b"F")
        os.close(ready_fd)
        return EXIT_JOURNAL_CORRUPT

    def _drain(signum, frame):
        service.begin_drain()
        threading.Thread(target=service.stop_serving, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    os.write(ready_fd, b"R")
    os.close(ready_fd)
    try:
        service.serve_forever()
    finally:
        service.drain_close()
    return EXIT_OK


class _Supervisor:
    def __init__(self, args):
        self.args = args
        self.workers = args.workers
        self.strategy = resolve_socket_strategy(args.socket_strategy)
        self.shutting_down = False
        self.pids: Dict[int, int] = {}  # pid -> shard index
        self.generations: List[int] = [0] * self.workers
        self.respawns: List[int] = [0] * self.workers
        #: Shared heartbeat/counter slots, created pre-fork so every
        #: worker generation inherits the same pages.
        self.board = WorkerStatusBoard(self.workers)
        self.watchdog_timeout = float(
            getattr(args, "watchdog_timeout", 0.0) or 0.0
        )
        self.shared_socket: Optional[socket.socket] = None
        self.reservation: Optional[socket.socket] = None
        self.direct_sockets: List[socket.socket] = []
        self.addresses: Tuple[str, ...] = ()
        self.bind_address: Tuple[str, int] = (args.host, args.port)

    # -- sockets ---------------------------------------------------------

    def bind(self) -> None:
        host, port = self.args.host, self.args.port
        if self.strategy == "reuseport":
            # Bound but never listening: reserves the port across worker
            # respawns without ever black-holing a connection (TCP SYNs
            # are only delivered to *listening* sockets).
            self.reservation = _bind_tcp(host, port, reuseport=True, listen=False)
            self.bind_address = self.reservation.getsockname()[:2]
        else:
            self.shared_socket = _bind_tcp(host, port, listen=True)
            self.bind_address = self.shared_socket.getsockname()[:2]
        self.direct_sockets = [
            _bind_tcp("127.0.0.1", 0, listen=True) for _ in range(self.workers)
        ]
        self.addresses = tuple(
            "http://127.0.0.1:{}".format(sock.getsockname()[1])
            for sock in self.direct_sockets
        )

    @property
    def base_url(self) -> str:
        return "http://{}:{}".format(*self.bind_address)

    # -- forking ---------------------------------------------------------

    def spawn(self, index: int) -> int:
        """Fork the worker for *index*; returns the readiness read-fd."""
        # 0.0 = "not serving yet": the watchdog only judges a worker
        # after its serve loops post the first real heartbeat, so slow
        # recovery at startup is never mistaken for a hang (that window
        # is covered by the readiness timeout instead).
        self.board.beat(index, now=0.0)
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            # Child: drop the parent's signal disposition before anything
            # else, close every inherited listener that is not ours, run.
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            signal.signal(signal.SIGINT, signal.SIG_DFL)
            os.close(read_fd)
            code = 1
            try:
                if self.reservation is not None:
                    self.reservation.close()
                for other, sock in enumerate(self.direct_sockets):
                    if other != index:
                        sock.close()
                shard = ShardInfo(index, self.workers, self.addresses)
                code = _worker_process(
                    index,
                    self.args,
                    self.strategy,
                    self.bind_address,
                    self.shared_socket,
                    self.direct_sockets[index],
                    shard,
                    self.generations[index],
                    write_fd,
                    board=self.board,
                )
            except SystemExit as exc:
                code = int(exc.code or 0)
            except BaseException:
                traceback.print_exc()
                code = 1
            finally:
                os._exit(code)
        os.close(write_fd)
        self.pids[pid] = index
        return read_fd

    def wait_ready(self, index: int, read_fd: int) -> bool:
        """Block until the worker signals readiness (or fails/time out)."""
        deadline = time.monotonic() + _READY_TIMEOUT
        try:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    print(
                        "worker {} never became ready".format(index),
                        file=sys.stderr,
                        flush=True,
                    )
                    return False
                readable, _, _ = select.select([read_fd], [], [], remaining)
                if not readable:
                    continue
                data = os.read(read_fd, 1)
                return data == b"R"
        finally:
            os.close(read_fd)

    # -- supervision -----------------------------------------------------

    def signal_workers(self, signum: int) -> None:
        for pid in list(self.pids):
            try:
                os.kill(pid, signum)
            except ProcessLookupError:
                pass

    def _on_signal(self, signum, frame):
        self.shutting_down = True
        self.signal_workers(signal.SIGTERM)

    # -- the hung-worker watchdog ----------------------------------------

    def _watchdog_loop(self) -> None:
        """SIGKILL any worker whose heartbeat went stale.

        A worker that *exits* is caught by ``os.wait``; this thread
        catches the one that *hangs* — process alive, sockets bound,
        serve loops wedged.  The kill feeds the killed pid straight into
        the normal ``os.wait`` respawn path (same budget, same one-shot
        fault-plan stripping), so detection and recovery share one code
        path.
        """
        interval = max(0.05, min(1.0, self.watchdog_timeout / 4.0))
        while not self.shutting_down and self.pids:
            time.sleep(interval)
            if self.shutting_down:
                return
            for pid, index in list(self.pids.items()):
                age = self.board.heartbeat_age(index)
                if age is None or age <= self.watchdog_timeout:
                    continue
                self.board.record_hung(index)
                # Reset the slot so one hang is one kill: the respawn
                # only starts the clock again after its first beat.
                self.board.beat(index, now=0.0)
                print(
                    "worker {} (shard {}) hung: no heartbeat for "
                    "{:.1f}s (watchdog timeout {:.1f}s); killing "
                    "pid {}".format(
                        index, index, age, self.watchdog_timeout, pid
                    ),
                    file=sys.stderr,
                    flush=True,
                )
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass

    def run(self) -> int:
        self.bind()
        signal.signal(signal.SIGTERM, self._on_signal)
        signal.signal(signal.SIGINT, self._on_signal)
        for index in range(self.workers):
            read_fd = self.spawn(index)
            if not self.wait_ready(index, read_fd):
                code = self._reap_specific(index)
                self.shutting_down = True
                self.signal_workers(signal.SIGTERM)
                self._reap_all()
                return code if code is not None else EXIT_RECOVERY_FAILED
        print(
            "repro-anonymize service listening on {} ({} workers, "
            "{} sockets)".format(self.base_url, self.workers, self.strategy),
            flush=True,
        )
        if self.args.ready_file:
            from pathlib import Path

            Path(self.args.ready_file).write_text(self.base_url + "\n")

        if self.watchdog_timeout > 0:
            threading.Thread(
                target=self._watchdog_loop,
                name="hung-worker-watchdog",
                daemon=True,
            ).start()

        final_code = EXIT_OK
        while self.pids:
            try:
                pid, status = os.wait()
            except ChildProcessError:
                break
            except InterruptedError:
                continue
            if pid not in self.pids:
                continue
            index = self.pids.pop(pid)
            code = os.waitstatus_to_exitcode(status)
            if self.shutting_down:
                continue
            if code in _FATAL_EXITS:
                print(
                    "worker {} exited {} (fatal); shutting down".format(
                        index, code
                    ),
                    file=sys.stderr,
                    flush=True,
                )
                final_code = code
                self.shutting_down = True
                self.signal_workers(signal.SIGTERM)
                continue
            self.respawns[index] += 1
            self.board.record_respawn(index)
            if self.respawns[index] > RESPAWN_LIMIT:
                print(
                    "worker {} crash-looped past {} respawns; shutting "
                    "down".format(index, RESPAWN_LIMIT),
                    file=sys.stderr,
                    flush=True,
                )
                final_code = EXIT_RECOVERY_FAILED
                self.shutting_down = True
                self.signal_workers(signal.SIGTERM)
                continue
            # Fault plans are one-shot per supervisor run: the injected
            # fault already fired in the dead worker; its replacement
            # starts clean so a chaos drill converges.
            os.environ.pop(FAULT_PLAN_ENV, None)
            self.generations[index] += 1
            print(
                "worker {} (shard {}) exited {}; respawning "
                "(generation {})".format(
                    index, index, code, self.generations[index]
                ),
                flush=True,
            )
            time.sleep(0.05)
            read_fd = self.spawn(index)
            if not self.wait_ready(index, read_fd):
                code = self._reap_specific(index)
                final_code = code if code is not None else EXIT_RECOVERY_FAILED
                self.shutting_down = True
                self.signal_workers(signal.SIGTERM)
        self._close_sockets()
        print("repro-anonymize service drained; exiting", flush=True)
        return final_code

    def _reap_specific(self, index: int) -> Optional[int]:
        """Reap the (just-failed) worker for *index*; returns its code."""
        for pid, owner in list(self.pids.items()):
            if owner != index:
                continue
            try:
                _, status = os.waitpid(pid, 0)
            except ChildProcessError:
                self.pids.pop(pid, None)
                return None
            self.pids.pop(pid, None)
            return os.waitstatus_to_exitcode(status)
        return None

    def _reap_all(self) -> None:
        while self.pids:
            try:
                pid, _status = os.wait()
            except (ChildProcessError, InterruptedError):
                break
            self.pids.pop(pid, None)

    def _close_sockets(self) -> None:
        for sock in self.direct_sockets:
            try:
                sock.close()
            except OSError:
                pass
        for sock in (self.shared_socket, self.reservation):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass


def run_supervisor(args) -> int:
    """``repro-anonymize serve --workers N`` for N >= 2 (the CLI entry)."""
    if not hasattr(os, "fork"):
        print(
            "error: --workers > 1 requires os.fork (not available on this "
            "platform); run one daemon per port instead",
            file=sys.stderr,
        )
        return EXIT_RECOVERY_FAILED
    if args.state_dir is not None:
        try:
            check_topology(args.state_dir, args.workers)
            write_topology(args.state_dir, args.workers)
        except TopologyError as exc:
            print("error: {}".format(exc), file=sys.stderr)
            return EXIT_RECOVERY_FAILED
        except OSError as exc:
            print(
                "error: cannot use state dir {}: {}".format(
                    args.state_dir, exc
                ),
                file=sys.stderr,
            )
            return EXIT_RECOVERY_FAILED
    try:
        supervisor = _Supervisor(args)
    except ValueError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return EXIT_RECOVERY_FAILED
    return supervisor.run()
