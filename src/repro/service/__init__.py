"""Long-lived anonymization service (daemon, sessions, client, metrics).

The batch pipeline pays pass-list load, rule compilation, and the
mapping-freeze scan on every invocation; the service pays them once per
*session* and then serves streaming anonymization requests over a local
HTTP or Unix-socket API.  See :mod:`repro.service.server` for the API
surface and guarantees, :mod:`repro.service.sessions` for the session
and freeze semantics, and DESIGN.md §9 for the architecture.
"""

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.server import AnonymizationService
from repro.service.sessions import Session, SessionManager

__all__ = [
    "AnonymizationService",
    "ServiceClient",
    "ServiceClientError",
    "Session",
    "SessionManager",
]
