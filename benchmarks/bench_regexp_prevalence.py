"""E5 — regexp usage prevalence (paper Sections 4.4-4.5).

Paper (over 31 networks): digit wildcards/ranges in public-ASN regexps in
2 networks, ranges over private ASNs in 3, alternation in 10, community
regexps in 5, community ranges in 2.  Measured by *parsing the rendered
configs* (not by trusting the generator flags).
"""

import re

from _tables import report

from repro.configmodel import ParsedNetwork


def _classify_network(configs):
    """Detect regexp shapes from the configs themselves."""
    parsed = ParsedNetwork.from_configs(configs)
    has_public_range = has_private_range = has_alternation = False
    has_community_regex = has_community_range = False
    for router in parsed.routers.values():
        for acl in router.aspath_acls:
            if "|" in acl.regex:
                has_alternation = True
            for match in re.finditer(r"(\d+)\[(\d)-(\d)\]", acl.regex):
                first_accepted = int(match.group(1) + match.group(2))
                if first_accepted >= 64512:
                    has_private_range = True
                else:
                    has_public_range = True
        for community in router.community_lists:
            if not community.expanded:
                continue
            if re.search(r"[\[\].*+?]", community.body) or "|" in community.body:
                has_community_regex = True
            if re.search(r"\[\d-\d\]|\.\.", community.body):
                has_community_range = True
    return (
        has_public_range,
        has_private_range,
        has_alternation,
        has_community_regex,
        has_community_range,
    )


def test_regexp_prevalence(dataset, benchmark):
    def classify_all():
        counts = [0, 0, 0, 0, 0]
        for network in dataset:
            flags = _classify_network(network.configs)
            for index, flag in enumerate(flags):
                counts[index] += bool(flag)
        return counts

    counts = benchmark.pedantic(classify_all, rounds=1, iterations=1)
    rows = [
        ("networks with public-ASN range regexps", "2/31",
         "{}/31".format(counts[0]), ""),
        ("networks with private-ASN range regexps", "3/31",
         "{}/31".format(counts[1]), ""),
        ("networks with alternation regexps", "10/31",
         "{}/31".format(counts[2]), ""),
        ("networks with community regexps", "5/31",
         "{}/31".format(counts[3]), ""),
        ("  ...of those, with range expressions", "2/31",
         "{}/31".format(counts[4]), ""),
    ]
    report("E5", "regexp prevalence vs paper Sections 4.4-4.5", rows)
    assert counts[0] == 2
    assert counts[1] == 3
    assert counts[2] >= 10  # alternation networks (flag) + range networks
    assert counts[3] == 5
    assert counts[4] == 2
