"""E15 — anonymization throughput at corpus scale (paper Section 6.1).

The paper anonymized 4.3M lines; full automation was a hard requirement.
Measures end-to-end lines/second over a multi-network sample, projects
the full-corpus wall time, and emits a machine-readable
``results/BENCH_throughput.json`` (including the active recognizer
plugin set — plugin families add rules to the hot path, so a throughput
number is only comparable to another taken under the same composition).
"""

import json
import os

from _tables import RESULTS_DIR, fmt, report

from repro.core import Anonymizer


def test_end_to_end_throughput(dataset, benchmark):
    sample = sorted(dataset, key=lambda n: -len(n.configs))[0]
    total_lines = sum(len(t.splitlines()) for t in sample.configs.values())

    def run():
        anonymizer = Anonymizer(salt=b"tp")
        anonymizer.anonymize_network(dict(sample.configs))
        return anonymizer

    result = benchmark(run)
    seconds = benchmark.stats.stats.mean
    lines_per_second = total_lines / seconds
    projected_hours = 4_300_000 / lines_per_second / 3600

    payload = {
        "experiment": "BENCH_throughput",
        "active_plugins": sorted(result.active_plugin_families),
        "network": sample.name,
        "files": len(sample.configs),
        "lines": total_lines,
        "seconds_mean": seconds,
        "lines_per_second": lines_per_second,
        "projected_full_corpus_hours": projected_hours,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "BENCH_throughput.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    rows = [
        ("sample size", "(4.3M lines total)", str(total_lines),
         "largest single network at bench scale"),
        ("throughput", "fully automated", fmt(lines_per_second, 0) + " lines/s", ""),
        ("plugins", "", ",".join(payload["active_plugins"]) or "(none)", ""),
        ("projected 4.3M-line corpus", "(3 months incl. human loop)",
         fmt(projected_hours, 2) + " h machine time",
         "the paper's 3 months were dominated by the human iteration"),
    ]
    report("E15", "anonymization throughput", rows)
    assert result.report.lines_in == total_lines
    assert lines_per_second > 1000
