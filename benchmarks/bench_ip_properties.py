"""E6 — IP anonymization properties (paper Section 4.3).

Measures, over a large address sample: bijectivity, exact prefix
preservation, class preservation, special-address fixedness, collision-
walk frequency, and subnet-shaping success — plus raw mapping throughput.
"""

import random

from _tables import fmt, report

from repro.core.ipanon import PrefixPreservingMap, SpecialAddresses
from repro.netutil import address_class, trailing_zero_bits

SAMPLE = 20_000


def _shared_prefix(a, b):
    xor = a ^ b
    return 32 if xor == 0 else 32 - xor.bit_length()


def test_ip_map_properties(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rng = random.Random(99)
    mapping = PrefixPreservingMap(b"e6-salt")
    addresses = [rng.randrange(0x01000000, 0xDF000000) for _ in range(SAMPLE)]
    unique = sorted(set(addresses))
    mapped = {a: mapping.map_int(a) for a in unique}

    bijective = len(set(mapped.values())) == len(unique)
    class_ok = sum(
        address_class(mapped[a]) == address_class(a) for a in unique
    )
    prefix_ok = 0
    pair_sample = [
        (rng.choice(unique), rng.choice(unique)) for _ in range(5000)
    ]
    for a, b in pair_sample:
        if _shared_prefix(mapped[a], mapped[b]) == _shared_prefix(a, b):
            prefix_ok += 1

    specials_fixed = all(
        mapping.map_int(v) == v
        for v in (0xFFFFFF00, 0x000000FF, 0xE0000001, 0, 0xFFFFFFFF)
    )

    # Ablation 1: declaring all of 127/8 special forces collisions (see the
    # SpecialAddresses docstring) — quantify the affected fraction under
    # the paper's walk policy.
    walker = PrefixPreservingMap(
        b"e6-loopback",
        specials=SpecialAddresses(include_loopback=True),
        collision_policy="walk",
    )
    for a in unique[:5000]:
        walker.map_int(a)
    walked_fraction = walker.collision_walks / 5000

    # Ablation 2: the unlucky-/8 case — under the paper's walk policy the
    # /8 base whose image is 0/8 loses its prefix relations; under the
    # default allow policy it keeps them.
    def unlucky_delta(policy):
        probe = PrefixPreservingMap(b"e6-unlucky", collision_policy=policy)
        base = probe.map_int(0x0A000000)   # 10.0.0.0 (maps near 0/8 for
        host = probe.map_int(0x0A000005)   # this salt's flip stream)
        return _shared_prefix(base, host), probe.collision_walks

    # Subnet shaping: fresh map, insert /24 subnet addresses first.
    shaper = PrefixPreservingMap(b"e6-shape")
    subnet_bases = [rng.randrange(0x0A0000, 0x0AFFFF) << 8 for _ in range(2000)]
    shaped = sum(
        trailing_zero_bits(shaper.map_int(base)) >= 8 for base in set(subnet_bases)
    )

    rows = [
        ("sample size", "(4.3M lines)", str(len(unique)), "distinct addresses"),
        ("bijective", "required", "yes" if bijective else "NO", ""),
        ("prefix relations preserved", "100%",
         fmt(100.0 * prefix_ok / len(pair_sample)) + "%", "5000 random pairs"),
        ("class preserved", "100%", fmt(100.0 * class_ok / len(unique)) + "%", ""),
        ("special addresses fixed", "required", "yes" if specials_fixed else "NO", ""),
        ("collision walks (paper special set)", "rare", str(mapping.collision_walks),
         "recursive remap count"),
        ("walked fraction if 127/8 were special", "(n/a)",
         fmt(walked_fraction * 100, 2) + "%",
         "why loopback is opt-in"),
        ("collision policy", "walk (recursive remap)", "allow (default)",
         "walk breaks walked addresses' prefix relations; see ipanon.py"),
        ("subnet addresses shaped (inserted first)", "always",
         fmt(100.0 * shaped / len(set(subnet_bases))) + "%", ""),
        ("trie nodes created", "(n/a)", str(mapping.nodes_created), ""),
    ]
    report("E6", "IP map properties vs paper Section 4.3", rows)
    assert bijective
    assert prefix_ok == len(pair_sample)
    assert class_ok == len(unique)
    assert specials_fixed
    assert mapping.collision_walks == 0
    assert shaped == len(set(subnet_bases))


def test_ip_map_throughput(benchmark):
    rng = random.Random(7)
    addresses = [rng.randrange(0x01000000, 0xDF000000) for _ in range(5000)]

    def run():
        mapping = PrefixPreservingMap(b"bench")
        for address in addresses:
            mapping.map_int(address)
        return mapping

    result = benchmark(run)
    assert result.addresses_mapped == len(addresses)
