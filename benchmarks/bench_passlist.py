"""E18 (extension) — pass-list construction by scraping (Section 4.1).

The paper's assumption: "In theory, most Cisco keywords will appear
somewhere in the guides."  Measures the coverage curve — what fraction of
the keyword inventory the scraped pass-list reaches as the corpus grows —
and the false-admission rate (non-keyword material reaching the list).
"""

from _tables import fmt, report

from repro.core.passlist import BASE_KEYWORDS
from repro.iosgen.corpus import build_passlist_from_corpus, build_reference_corpus


def test_passlist_scrape_coverage(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    inventory = {
        part
        for word in BASE_KEYWORDS.split()
        for part in word.split("-")
        if len(part) > 1
    }
    rows = []
    coverage_at = {}
    for pages in (25, 100, 400, 1000):
        scraped = build_passlist_from_corpus(build_reference_corpus(seed=3, pages=pages))
        covered = sum(1 for word in inventory if word in scraped)
        coverage_at[pages] = covered / len(inventory)
        rows.append(
            ("coverage after {} pages".format(pages),
             "most keywords appear somewhere",
             fmt(100.0 * covered / len(inventory)) + "%",
             "{} of {} keywords".format(covered, len(inventory))))
    # False admissions: numbers and addresses must never be scraped in.
    poisoned = build_passlist_from_corpus(
        {"p": "use 12345 at 10.0.0.1 or 0xdead and a b c\n" * 5}
    )
    rows.append(
        ("numeric/address admissions", "0",
         str(sum(1 for token in poisoned if any(c.isdigit() for c in token))),
         "scraper keeps alphabetic runs only"))
    report("E18", "pass-list scraping coverage (Section 4.1 assumption)", rows)
    assert coverage_at[1000] > 0.95
    assert coverage_at[25] < coverage_at[1000]
