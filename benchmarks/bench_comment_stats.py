"""E3 — comment stripping statistics (paper Section 4.2).

Paper: "Among a dataset of 173 networks, an average of 1.5% of the words
were found to be comments and removed (90th percentile 6%)."
"""

import statistics

from _tables import fmt, report


def _percentile(values, fraction):
    ordered = sorted(values)
    position = (len(ordered) - 1) * fraction
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (position - low)


def test_comment_word_fraction(anonymized_dataset, benchmark):
    fractions = benchmark.pedantic(
        lambda: [
        
            result.report.comment_word_fraction
            for _network, _anonymizer, result in anonymized_dataset
        ],
        rounds=1,
        iterations=1,
    )
    mean = statistics.mean(fractions)
    p90 = _percentile(fractions, 0.90)
    removed = sum(r.report.comment_words_removed for _, _, r in anonymized_dataset)
    rows = [
        ("networks measured", "173", str(len(fractions)),
         "we have 31; distribution target"),
        ("mean comment-word fraction", "1.5%", fmt(mean * 100, 2) + "%", ""),
        ("P90 comment-word fraction", "6%", fmt(p90 * 100, 2) + "%", ""),
        ("comment words removed", "(all)", str(removed), "stripped entirely"),
    ]
    report("E3", "comment fraction vs paper Section 4.2", rows)
    assert 0.005 <= mean <= 0.04      # near 1.5%
    assert 0.02 <= p90 <= 0.12        # near 6%


def test_no_comment_text_survives(anonymized_dataset, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for _network, _anonymizer, result in anonymized_dataset:
        for text in result.configs.values():
            assert "description " not in text
            assert "banner motd" not in text
            assert " remark " not in text
