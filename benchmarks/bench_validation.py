"""E8 + E9 — the validation suites pass on every network (paper Section 5).

Paper: both suites produced identical outputs pre- and post-anonymization
("our tests have given us great confidence that our anonymizer
implementation preserves information related to routing design").
"""

from _tables import report

from repro.validation import compare_characteristics, compare_designs


def test_suite1_all_networks(parsed_pairs, benchmark):
    def run():
        passed, failures = 0, []
        for name, pre, post in parsed_pairs:
            result = compare_characteristics(pre, post)
            if result.passed:
                passed += 1
            else:
                failures.append((name, result.differences[:3]))
        return passed, failures

    passed, failures = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("networks passing suite 1", "31/31",
         "{}/{}".format(passed, len(parsed_pairs)), "independent characteristics"),
    ]
    for name, diffs in failures:
        rows.append(("  FAIL " + name, "", "", "; ".join(map(str, diffs))))
    report("E8", "validation suite 1 (characteristics)", rows)
    assert passed == len(parsed_pairs), failures


def test_suite2_all_networks(parsed_pairs, benchmark):
    def run():
        passed, failures = 0, []
        for name, pre, post in parsed_pairs:
            result = compare_designs(pre, post)
            if result.passed:
                passed += 1
            else:
                failures.append((name, result.differences[:3]))
        return passed, failures

    passed, failures = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("networks passing suite 2", "31/31",
         "{}/{}".format(passed, len(parsed_pairs)), "routing-design extraction"),
    ]
    for name, diffs in failures:
        rows.append(("  FAIL " + name, "", "", "; ".join(map(str, diffs))))
    report("E9", "validation suite 2 (routing design)", rows)
    assert passed == len(parsed_pairs), failures


def test_design_extraction_speed(parsed_pairs, benchmark):
    from repro.validation import extract_design

    _, pre, _ = parsed_pairs[0]
    benchmark(extract_design, pre)
