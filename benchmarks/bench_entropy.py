"""E20 (extension) — identification-entropy budget of preserved structure.

Section 6 asks which preserved structures could fingerprint a network.
This experiment puts numbers on each: the empirical identification entropy
(bits) each preserved feature family contributes across the corpus, versus
the log2(31) ~ 4.95 bits needed to identify a network uniquely.
"""

import math

from _tables import fmt, report

from repro.attacks.fingerprint import (
    combined_fingerprint,
    feature_entropy,
    interface_mix_fingerprint,
    peering_fingerprint,
    size_fingerprint,
    subnet_fingerprint,
)


def test_entropy_budget(parsed_pairs, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    networks = [pre for _name, pre, _post in parsed_pairs]
    total = len(networks)
    max_bits = math.log2(total)
    families = [
        ("router/interface counts", size_fingerprint),
        ("interface-type mix", interface_mix_fingerprint),
        ("peering shape (Section 6.3)", peering_fingerprint),
        ("subnet-size histogram (Section 6.2)", subnet_fingerprint),
        ("all combined", combined_fingerprint),
    ]
    rows = []
    for label, fn in families:
        bits = feature_entropy([fn(n) for n in networks])
        rows.append(
            (label, "<= {} bits needed".format(fmt(max_bits, 2)),
             fmt(bits, 2) + " bits",
             "unique" if abs(bits - max_bits) < 1e-9 else ""))
    report("E20", "identification entropy of preserved structure", rows)
    subnet_bits = feature_entropy([subnet_fingerprint(n) for n in networks])
    peering_bits = feature_entropy([peering_fingerprint(n) for n in networks])
    # The subnet histogram is the dominant identifying feature; peering
    # alone is substantially weaker (edge networks collide).
    assert subnet_bits > peering_bits
