"""E11 + E12 — fingerprinting attacks (paper Sections 6.2-6.3).

E11 (the paper's stated future-work experiment): is the subnet-size
histogram unique enough to re-identify a network among candidates?

E12: peering-structure fingerprints — the paper predicts backbones are
fingerprintable but edge networks much less so (fewer attachment points);
also 10/31 networks are internally compartmentalized.
"""

from _tables import fmt, report

from repro.attacks import (
    fingerprint_uniqueness,
    peering_fingerprint,
    reidentification_experiment,
    subnet_fingerprint,
)


def test_subnet_fingerprint_uniqueness(parsed_pairs, dataset, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pre = {name: p for name, p, _ in parsed_pairs}
    post = {name: q for name, _, q in parsed_pairs}
    fingerprints = [subnet_fingerprint(p) for p in pre.values()]
    uniqueness = fingerprint_uniqueness(fingerprints)
    result = reidentification_experiment(pre, post, subnet_fingerprint)
    rows = [
        ("fingerprints preserved by anonymization", "identical (by design)",
         "{}/{}".format(
             sum(subnet_fingerprint(pre[n]) == subnet_fingerprint(post[n]) for n in pre),
             len(pre)), "Section 6.2's premise"),
        ("unique subnet fingerprints", "open question",
         "{}/{}".format(uniqueness.unique, uniqueness.total), ""),
        ("fingerprint entropy", "open question",
         fmt(uniqueness.entropy_bits, 2) + " bits",
         "max {} bits".format(fmt(__import__('math').log2(uniqueness.total), 2))),
        ("re-identification rate", "open question",
         fmt(result.success_rate * 100) + "%",
         "exact-match attacker, all candidates known"),
    ]
    report("E11", "subnet-size-histogram fingerprint uniqueness", rows)
    # The reproduction's answer to the paper's open question: histograms
    # are essentially unique -> the attack works when the candidate set is
    # fully measurable.
    assert uniqueness.unique_fraction > 0.9


def test_peering_fingerprint_backbone_vs_edge(parsed_pairs, dataset, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_name = {net.name: net for net in dataset}
    backbone_fps = []
    edge_fps = []
    preserved = 0
    for name, pre, post in parsed_pairs:
        fp_pre = peering_fingerprint(pre)
        if fp_pre == peering_fingerprint(post):
            preserved += 1
        if by_name[name].spec.kind == "backbone":
            backbone_fps.append(fp_pre)
        else:
            edge_fps.append(fp_pre)
    backbone_u = fingerprint_uniqueness(backbone_fps)
    edge_u = fingerprint_uniqueness(edge_fps)
    compartmentalized = sum(1 for n in dataset if n.spec.compartmentalized)
    rows = [
        ("peering fingerprints preserved", "identical (by design)",
         "{}/{}".format(preserved, len(parsed_pairs)), ""),
        ("backbone peering-fp uniqueness", "likely fingerprintable",
         "{}/{}".format(backbone_u.unique, backbone_u.total), ""),
        ("edge peering-fp uniqueness", "less fingerprintable",
         "{}/{}".format(edge_u.unique, edge_u.total),
         "fewer attachment points -> collisions"),
        ("edge largest collision group", "(n/a)",
         str(edge_u.largest_collision_group), ""),
        ("compartmentalized networks", "10/31",
         "{}/31".format(compartmentalized),
         "defeat insider probing (Section 6.3)"),
    ]
    report("E12", "peering-structure fingerprints: backbone vs edge", rows)
    assert preserved == len(parsed_pairs)
    assert compartmentalized == 10
    # The paper's qualitative prediction: edge networks collide more.
    assert edge_u.unique_fraction <= backbone_u.unique_fraction or (
        edge_u.largest_collision_group >= backbone_u.largest_collision_group
    )
