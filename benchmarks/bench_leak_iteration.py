"""E10 — iterative leak closure (paper Section 6.1).

Paper: "the iteration closes quickly, requiring fewer than 5 iterations
over 3 months to anonymize 4.3 million lines of configuration from 7655
routers running more than 200 different IOS versions."

Mechanized here: start each network from a single enabled ASN rule, let
the automated operator add rules that match highlighted lines, count
iterations to zero leaks.
"""

import statistics

from _tables import fmt, report

from repro.attacks.textual import iterative_closure


def test_iterative_closure_converges(dataset, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    iteration_counts = []
    final_leaks = []
    # Closure is O(corpus x iterations); sample a representative slice:
    # the two largest backbones plus several enterprises with policy flags.
    chosen = sorted(
        dataset, key=lambda n: -sum(len(t) for t in n.configs.values())
    )[:2]
    chosen += [n for n in dataset if n.spec.use_community_regexps][:2]
    chosen += [n for n in dataset if n.spec.use_aspath_range_regexps][:1]
    for network in {n.name: n for n in chosen}.values():
        history = iterative_closure(
            dict(network.configs),
            "closure-{}".format(network.name).encode(),
            initial_rules=("R10",),
        )
        iteration_counts.append(len(history))
        final_leaks.append(history[-1].leaks_found)
    rows = [
        ("networks exercised", "31 (over 3 months)", str(len(iteration_counts)),
         "largest + policy-heavy sample"),
        ("max iterations to closure", "< 5", str(max(iteration_counts)), ""),
        ("mean iterations", "(n/a)", fmt(statistics.mean(iteration_counts)), ""),
        ("residual leaks at closure", "0", str(sum(final_leaks)), ""),
    ]
    report("E10", "iterative leak closure vs paper Section 6.1", rows)
    assert max(iteration_counts) < 5
    assert sum(final_leaks) == 0
