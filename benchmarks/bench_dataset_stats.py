"""E2 — corpus shape: config-size distribution (paper Section 2).

Paper: 7655 routers in 31 networks; configs 50–10,000 lines, P25 = 183,
P90 = 1123; 4.3 M total lines; 200+ IOS versions.  Absolute counts depend
on REPRO_BENCH_SCALE; the distribution *shape* is the reproduction target.
"""

from _tables import fmt, report
from conftest import BENCH_SCALE

from repro.iosgen import dataset_statistics


def test_dataset_statistics(dataset, benchmark):
    stats = benchmark.pedantic(
        dataset_statistics, args=(dataset,), rounds=3, iterations=1
    )
    versions = set()
    for network in dataset:
        for router in network.plan.routers.values():
            versions.add(router.version)
    rows = [
        ("networks", "31", str(stats["networks"]), ""),
        ("routers", "7655", str(stats["routers"]),
         "scale={}".format(BENCH_SCALE)),
        ("total config lines", "4.3M", str(stats["total_lines"]), ""),
        ("min lines", "~50", fmt(stats["min_lines"]), ""),
        ("P25 lines", "183", fmt(stats["p25_lines"]),
         "scale-invariant (per-router)"),
        ("median lines", "(n/a)", fmt(stats["median_lines"]), ""),
        ("P90 lines", "1123", fmt(stats["p90_lines"]),
         "scale-invariant (per-router)"),
        ("max lines", "10000", fmt(stats["max_lines"]), "long tail"),
        ("distinct IOS versions", ">200", str(len(versions)),
         "full family >200; per-corpus sample"),
    ]
    report("E2", "corpus shape vs paper Section 2", rows)
    assert stats["networks"] == 31
    assert stats["min_lines"] >= 40
    # Shape: quartile ordering and heavy tail.
    assert stats["p25_lines"] < stats["median_lines"] < stats["p90_lines"]
    assert stats["p90_lines"] > 2.5 * stats["p25_lines"]
