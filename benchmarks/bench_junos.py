"""E16 (extension) — cross-vendor applicability.

The paper implements for Cisco IOS and claims the techniques are "directly
applicable to JunOS and other router configuration languages".  This
experiment renders the *same network plan* in both syntaxes, anonymizes
both through the same engine (JunOS rule extensions J1-J9), and checks:

* both vendors' outputs pass both validation suites;
* the vendor-neutral design structure extracted from the two renderings is
  identical (it is the same network);
* throughput is comparable across syntaxes.
"""

from _tables import fmt, report

from repro.configmodel import ParsedNetwork
from repro.core import Anonymizer
from repro.iosgen import NetworkSpec, generate_network
from repro.validation import compare_characteristics, compare_designs

_BASE = dict(
    name="xvendor",
    kind="enterprise",
    seed=777,
    num_pops=3,
    igp="ospf",
    use_community_regexps=True,
    lans_per_access=(2, 6),
    static_burst=(1, 6),
)


def test_cross_vendor_applicability(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ios_net = generate_network(NetworkSpec(junos_fraction=0.0, **_BASE))
    junos_net = generate_network(NetworkSpec(junos_fraction=1.0, **_BASE))
    mixed_net = generate_network(NetworkSpec(junos_fraction=0.5, **_BASE))

    rows = []
    suite_pass = {}
    for label, network in (("ios", ios_net), ("junos", junos_net), ("mixed", mixed_net)):
        anonymizer = Anonymizer(salt="xv-{}".format(label).encode())
        result = anonymizer.anonymize_network(dict(network.configs))
        pre = ParsedNetwork.from_configs(network.configs)
        post = ParsedNetwork.from_configs(result.configs)
        suite1 = compare_characteristics(pre, post)
        suite2 = compare_designs(pre, post)
        suite_pass[label] = suite1.passed and suite2.passed
        rows.append(
            ("{} suites pass".format(label), "claimed applicable",
             "yes" if suite_pass[label] else "NO",
             "suite1={} suite2={}".format(suite1.passed, suite2.passed)))

    pre_ios = ParsedNetwork.from_configs(ios_net.configs)
    pre_junos = ParsedNetwork.from_configs(junos_net.configs)
    same_subnets = pre_ios.subnet_size_histogram() == pre_junos.subnet_size_histogram()
    same_sessions = sorted(pre_ios.ebgp_sessions_per_router().values()) == sorted(
        pre_junos.ebgp_sessions_per_router().values()
    )
    rows.append(
        ("same plan, two vendors: subnet histogram equal", "(same network)",
         "yes" if same_subnets else "NO", ""))
    rows.append(
        ("same plan, two vendors: eBGP session shape equal", "(same network)",
         "yes" if same_sessions else "NO", ""))
    report("E16", "cross-vendor applicability (IOS vs JunOS)", rows)
    assert all(suite_pass.values())
    assert same_subnets and same_sessions


def test_junos_throughput(benchmark):
    network = generate_network(NetworkSpec(junos_fraction=1.0, **_BASE))
    total_lines = sum(len(t.splitlines()) for t in network.configs.values())

    def run():
        Anonymizer(salt=b"jt").anonymize_network(dict(network.configs))

    benchmark(run)
    assert total_lines > 0
