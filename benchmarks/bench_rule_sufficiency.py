"""E4 — rule-set sufficiency (paper Sections 4.2, 4.4).

Paper: a set of 28 rules suffices across 200+ IOS versions; the 12
ASN-locating rules find every ASN.  Measured as: zero residual ASN leaks
(structured audit) and zero grep-scanner highlights across the whole
anonymized corpus, plus the per-rule hit inventory.
"""

from collections import Counter

from _tables import report

from repro.attacks.textual import scan_for_leaks, structured_asn_audit
from repro.core.rules import all_rules


def test_rule_sufficiency(anonymized_dataset, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    total_hits = Counter()
    audit_leaks = 0
    highlight_kinds = Counter()
    total_lines = 0
    versions = set()
    for network, anonymizer, result in anonymized_dataset:
        for rule_id, count in result.report.rule_hits.items():
            total_hits[rule_id] += count
        audit_leaks += len(
            structured_asn_audit(result.configs, anonymizer.report.seen_asns)
        )
        for leak in scan_for_leaks(
            result.configs,
            seen_asns=anonymizer.report.seen_asns,
            hashed_tokens=anonymizer.hasher.hashed_inputs.keys(),
            public_ips=anonymizer.report.seen_public_ips,
        ):
            highlight_kinds[leak.kind] += 1
        total_lines += sum(len(t.splitlines()) for t in result.configs.values())
        for router in network.plan.routers.values():
            versions.add(router.version)
    scan_highlights = sum(highlight_kinds.values())

    rows = [
        ("context rules defined", "28",
         str(len({r.rule_id.rstrip("b") for r in all_rules()
                  if r.rule_id.startswith("R")})),
         "+ X1 and J1-J10 extensions"),
        ("IOS versions covered", "200+", str(len(versions)), ""),
        ("residual ASN leaks (structured audit)", "0", str(audit_leaks), ""),
        ("grep highlights, ASN family (the paper's)", "a tiny fraction",
         str(highlight_kinds.get("asn", 0)),
         "coincidental integers (vlan/seq ids matching short ASNs) - the "
         "paper's Genuity-AS-1 footnote; all false positives per the "
         "structured audit"),
        ("grep highlights, extended ip/string families", "(extension)",
         "ip={} string={}".format(
             highlight_kinds.get("ip", 0), highlight_kinds.get("string", 0)),
         "noisier: outputs can coincide with other inputs by chance"),
        ("highlight fraction of lines", "tiny",
         "{:.4%}".format(scan_highlights / max(1, total_lines)), ""),
        ("highlight kinds", "(n/a)",
         " ".join("{}={}".format(k, v) for k, v in sorted(highlight_kinds.items()))
         or "none", ""),
        ("distinct rules that fired", "(n/a)",
         str(sum(1 for r in total_hits.values() if r > 0)), ""),
    ]
    for rule_id in sorted(total_hits, key=lambda r: (len(r), r)):
        rows.append(("  hits {}".format(rule_id), "", str(total_hits[rule_id]), ""))
    report("E4", "28-rule sufficiency across IOS versions", rows)
    assert audit_leaks == 0
    # The grep heuristic may highlight coincidental integers for human
    # review ("usually a tiny fraction of the configs" - Section 6.1).
    # The paper greps for recorded ASNs; that family must stay tiny.  The
    # ip/string families are our extensions and are inherently noisier
    # (mapped outputs coincide with *other* networks' original addresses),
    # so they are reported but not bounded here.
    assert highlight_kinds.get("asn", 0) / max(1, total_lines) < 0.005
    # Every ASN/IP/misc/secret context rule earns its keep: the corpus
    # exercises all of them at least once.
    for rule_number in range(6, 29):
        rule_id = "R{}".format(rule_number)
        assert total_hits.get(rule_id, 0) > 0, (
            "{} never fired on the corpus".format(rule_id)
        )
