"""E17 (extension) — feasibility of the Section 6.2 probing attack.

The paper judges remote fingerprint measurement "extremely challenging (or
impossible …)" but assumes it possible for the security analysis.  This
experiment quantifies the gap: re-identification with *exact* fingerprints
(the paper's pessimistic assumption, cf. E11) versus fingerprints
*estimated by probing* with the paper's own clustering heuristic, swept
over probe-loss rates and the attacker's gap threshold.
"""

from _tables import fmt, report

from repro.attacks.fingerprint import subnet_fingerprint
from repro.attacks.probing import noisy_reidentification, probed_fingerprint
from repro.configmodel import ParsedNetwork


def test_probing_attack_feasibility(dataset, parsed_pairs, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_name = {net.name: net for net in dataset}
    candidates = {name: subnet_fingerprint(pre) for name, pre, _ in parsed_pairs}

    exact_correct, _ = noisy_reidentification(candidates, candidates)
    rows = [
        ("re-identification, exact fingerprints", "assumed possible",
         "{}/{}".format(exact_correct, len(candidates)),
         "paper's worst-case assumption (E11)"),
    ]
    for loss_rate in (0.0, 0.1, 0.3):
        probed = {
            name: probed_fingerprint(by_name[name], seed=1, loss_rate=loss_rate)
            for name in candidates
        }
        correct, attempted = noisy_reidentification(candidates, probed)
        rows.append(
            ("re-identification, probed (loss {:.0%})".format(loss_rate),
             "'extremely challenging'",
             "{}/{}".format(correct, attempted),
             "gap-clustering estimator"))
    report("E17", "probing-attack feasibility (Section 6.2 heuristic)", rows)
    assert exact_correct == len(candidates)
    # The measured claim: estimation error destroys most of the attack's
    # power — matching the paper's skepticism.
    probed = {
        name: probed_fingerprint(by_name[name], seed=1, loss_rate=0.1)
        for name in candidates
    }
    correct, attempted = noisy_reidentification(candidates, probed)
    assert correct < attempted * 0.8
