"""Shared fixtures for the benchmark harness.

The paper-calibrated 31-network corpus is generated once per session at
``REPRO_BENCH_SCALE`` (default 0.1; set to 1.0 to regenerate the paper's
full ~3.4M-line corpus — generation plus anonymization then takes several
minutes).  Every bench file reads these fixtures; each experiment prints a
paper-vs-measured table via :mod:`_tables`.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.configmodel import ParsedNetwork
from repro.core import Anonymizer
from repro.iosgen import paper_dataset

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))


@pytest.fixture(scope="session")
def dataset():
    """The 31-network corpus at bench scale."""
    return paper_dataset(seed=BENCH_SEED, scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def anonymized_dataset(dataset):
    """(network, anonymizer, result) triples — each network under its own
    owner salt, as the paper's single-blind methodology prescribes."""
    triples = []
    for network in dataset:
        anonymizer = Anonymizer(salt="salt-{}".format(network.name).encode())
        result = anonymizer.anonymize_network(dict(network.configs))
        triples.append((network, anonymizer, result))
    return triples


@pytest.fixture(scope="session")
def parsed_pairs(anonymized_dataset):
    """(name, pre ParsedNetwork, post ParsedNetwork) per network."""
    pairs = []
    for network, _anonymizer, result in anonymized_dataset:
        pre = ParsedNetwork.from_configs(network.configs)
        post = ParsedNetwork.from_configs(result.configs)
        pairs.append((network.name, pre, post))
    return pairs
