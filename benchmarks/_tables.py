"""Paper-vs-measured table reporting for the benchmark harness.

Each experiment calls :func:`report` with rows of
(metric, paper_value, measured_value, note).  Tables print to stdout (run
pytest with ``-s`` to see them live) and accumulate in
``benchmarks/results/`` so EXPERIMENTS.md can be regenerated from a run.
"""

from __future__ import annotations

import os
from typing import Iterable, Tuple

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

Row = Tuple[str, str, str, str]


def report(experiment: str, title: str, rows: Iterable[Row]) -> str:
    rows = list(rows)
    width_metric = max([len(r[0]) for r in rows] + [len("metric")])
    width_paper = max([len(r[1]) for r in rows] + [len("paper")])
    width_measured = max([len(r[2]) for r in rows] + [len("measured")])
    lines = [
        "",
        "== {} — {} ==".format(experiment, title),
        "{:<{mw}}  {:>{pw}}  {:>{ew}}  {}".format(
            "metric", "paper", "measured", "note",
            mw=width_metric, pw=width_paper, ew=width_measured,
        ),
    ]
    for metric, paper, measured, note in rows:
        lines.append(
            "{:<{mw}}  {:>{pw}}  {:>{ew}}  {}".format(
                metric, paper, measured, note,
                mw=width_metric, pw=width_paper, ew=width_measured,
            )
        )
    text = "\n".join(lines)
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, experiment + ".txt")
    with open(path, "w") as handle:
        handle.write(text.lstrip("\n") + "\n")
    return text


def fmt(value, digits: int = 1) -> str:
    if isinstance(value, float):
        return "{:.{d}f}".format(value, d=digits)
    return str(value)
