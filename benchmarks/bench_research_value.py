"""E19 (extension) — research value of anonymized data at corpus scale.

Section 1 motivates the whole effort: anonymized configs should support
real research — topology derivation, routing-design analysis, robustness
evaluation, reachability analysis.  This experiment runs those analyses on
every network of the corpus, pre- and post-anonymization, and checks the
answers are identical (the strongest form of "the anonymized data retains
the key properties of the network design" from the abstract).
"""

from _tables import fmt, report

from repro.validation.reachability import compute_reachability
from repro.validation.robustness import (
    ospf_area_exposure,
    robustness_report,
    single_router_failures,
)


def test_research_analyses_invariant(parsed_pairs, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    robustness_equal = 0
    failures_equal = 0
    areas_equal = 0
    reach_equal = 0
    spof_networks = 0
    total = len(parsed_pairs)
    for _name, pre, post in parsed_pairs:
        pre_rob = robustness_report(pre)
        if pre_rob == robustness_report(post):
            robustness_equal += 1
        if pre_rob.articulation_points > 0:
            spof_networks += 1
        pre_shape = sorted(
            (i.disconnected_routers, i.isolates_bgp_speaker)
            for i in single_router_failures(pre)
        )
        post_shape = sorted(
            (i.disconnected_routers, i.isolates_bgp_speaker)
            for i in single_router_failures(post)
        )
        if pre_shape == post_shape:
            failures_equal += 1
        if ospf_area_exposure(pre) == ospf_area_exposure(post):
            areas_equal += 1
        if (
            compute_reachability(pre).matrix_shape()
            == compute_reachability(post).matrix_shape()
        ):
            reach_equal += 1
    rows = [
        ("robustness reports identical", "retains key properties",
         "{}/{}".format(robustness_equal, total), "SPOF/bridge/degree analysis"),
        ("failure-impact rankings identical", "retains key properties",
         "{}/{}".format(failures_equal, total), "per-router cut analysis"),
        ("OSPF area exposure identical", "retains key properties",
         "{}/{}".format(areas_equal, total), ""),
        ("reachability matrix shapes identical", "retains key properties",
         "{}/{}".format(reach_equal, total), "static reachability analysis"),
        ("networks with >=1 SPOF found", "(research finding)",
         "{}/{}".format(spof_networks, total),
         "the kind of result researchers would publish"),
    ]
    report("E19", "research analyses are anonymization-invariant", rows)
    assert robustness_equal == total
    assert failures_equal == total
    assert areas_equal == total
    assert reach_equal == total
