"""E13 — ablation: stored-trie map vs cryptography-based map (Section 4.3).

The paper chose Minshall's data-structure scheme over Xu's cryptographic
scheme because the stored trie can be *shaped* (class preservation,
subnet-address preservation), accepting the cost of per-owner state.
This bench quantifies the trade: shaping support, shareable state, and
throughput.
"""

import random

from _tables import report

from repro.core.cryptopan import CryptoPanMap
from repro.core.ipanon import PrefixPreservingMap
from repro.netutil import trailing_zero_bits

ADDRESSES = [random.Random(5).randrange(0x01000000, 0xDF000000) for _ in range(4000)]
SUBNETS = [base & 0xFFFFFF00 for base in ADDRESSES[:500]]


def test_property_support_matrix(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    trie = PrefixPreservingMap(b"abl")
    crypto = CryptoPanMap(b"abl")
    trie_shaped = sum(
        trailing_zero_bits(trie.map_int(s)) >= 8 for s in sorted(set(SUBNETS))
    )
    crypto_shaped = sum(
        trailing_zero_bits(crypto.map_int(s)) >= 8 for s in sorted(set(SUBNETS))
    )
    total = len(set(SUBNETS))
    rows = [
        ("prefix preserving", "both", "both", ""),
        ("class preserving", "both (static constraint)", "both", ""),
        ("special-address passthrough", "both", "both", ""),
        ("subnet-address shaping", "trie only",
         "trie {}/{} vs crypto {}/{}".format(trie_shaped, total, crypto_shaped, total),
         "shaping needs stored state"),
        ("state to share for consistency", "trie: the trie; crypto: ~none",
         "trie {} nodes vs crypto key-only".format(trie.nodes_created), ""),
    ]
    report("E13", "trie vs Crypto-PAn ablation", rows)
    assert trie_shaped == total
    assert crypto_shaped < total


def test_trie_throughput(benchmark):
    def run():
        mapping = PrefixPreservingMap(b"t")
        for address in ADDRESSES:
            mapping.map_int(address)

    benchmark(run)


def test_cryptopan_throughput(benchmark):
    def run():
        mapping = CryptoPanMap(b"t")
        for address in ADDRESSES:
            mapping.map_int(address)

    benchmark(run)
