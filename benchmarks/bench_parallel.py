"""E22 — parallel rewrite speedup vs worker count.

The freeze-then-rewrite pipeline makes the rewrite phase embarrassingly
parallel: after :meth:`Anonymizer.freeze_mappings` every shared map is
read-only, so files can be rewritten in any number of worker processes
with byte-identical output.  This benchmark measures end-to-end wall time
(freeze + rewrite + merge) for jobs in {1, 2, 4} on the largest network
of the bench corpus, checks the byte-identity guarantee while it is at
it, and emits a machine-readable ``results/BENCH_parallel.json``.

The speedup assertion (>= 2x at 4 workers) only applies on machines with
at least 4 usable cores; on smaller containers the numbers are recorded
but not asserted (process fan-out on one core can only add overhead).
"""

import json
import os
import time

from _tables import RESULTS_DIR, fmt, report

from repro.core import Anonymizer

JOBS_SWEEP = (1, 2, 4)
REPEATS = 3


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_run(configs, jobs):
    """Best-of-REPEATS wall time for a fresh freeze-then-rewrite run."""
    best = float("inf")
    outputs = None
    for _ in range(REPEATS):
        anonymizer = Anonymizer(salt=b"par-bench")
        start = time.perf_counter()
        result = anonymizer.anonymize_network(
            dict(configs), two_pass=True, jobs=jobs
        )
        best = min(best, time.perf_counter() - start)
        outputs = result.configs
    return best, outputs


def test_parallel_speedup(dataset):
    sample = sorted(dataset, key=lambda n: -len(n.configs))[0]
    total_lines = sum(len(t.splitlines()) for t in sample.configs.values())
    cpus = _usable_cpus()

    timings = {}
    baseline_outputs = None
    for jobs in JOBS_SWEEP:
        seconds, outputs = _timed_run(sample.configs, jobs)
        timings[jobs] = seconds
        if baseline_outputs is None:
            baseline_outputs = outputs
        else:
            # The headline guarantee, measured on the bench corpus too.
            assert outputs == baseline_outputs

    payload = {
        "experiment": "BENCH_parallel",
        "network": sample.name,
        "files": len(sample.configs),
        "lines": total_lines,
        "cpus": cpus,
        "repeats": REPEATS,
        "seconds": {str(jobs): timings[jobs] for jobs in JOBS_SWEEP},
        "speedup": {
            str(jobs): timings[1] / timings[jobs] for jobs in JOBS_SWEEP
        },
        "lines_per_second": {
            str(jobs): total_lines / timings[jobs] for jobs in JOBS_SWEEP
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_parallel.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    rows = [
        ("sample", "(4.3M lines total)",
         "{} files / {} lines".format(len(sample.configs), total_lines),
         sample.name),
        ("usable cores", "", str(cpus), ""),
    ]
    for jobs in JOBS_SWEEP:
        rows.append((
            "jobs={}".format(jobs), "",
            "{} s  ({}x)".format(
                fmt(timings[jobs], 2), fmt(payload["speedup"][str(jobs)], 2)
            ),
            "{} lines/s".format(fmt(total_lines / timings[jobs], 0)),
        ))
    report("E22", "parallel rewrite speedup", rows)

    if cpus >= 4:
        assert payload["speedup"]["4"] >= 2.0, (
            "expected >= 2x speedup at 4 workers on a {}-core machine, "
            "got {:.2f}x".format(cpus, payload["speedup"]["4"])
        )
