"""E22 — parallel rewrite speedup vs worker count.

The freeze-then-rewrite pipeline makes the rewrite phase embarrassingly
parallel: after :meth:`Anonymizer.freeze_mappings` every shared map is
read-only, so files can be rewritten in any number of worker processes
with byte-identical output.  This benchmark measures end-to-end wall time
(freeze + rewrite + merge) for jobs in {1, 2, 4} on the largest network
of the bench corpus, checks the byte-identity guarantee while it is at
it, and emits a machine-readable ``results/BENCH_parallel.json``.

CPU topology is recorded honestly: ``cpu_count`` is what the machine
has, ``cpus_usable`` is what this process may actually schedule on
(cgroup/affinity limited containers routinely advertise more cores than
they grant).  Sweep points with more workers than usable cores are still
measured — fan-out overhead on a starved container is a real deployment
number — but flagged ``cpus_limited`` and exempt from speedup
assertions (process fan-out on one core can only add overhead).

Single-core throughput is additionally gated against the checked-in
baseline (``baselines/BENCH_parallel_baseline.json``) when
``REPRO_BENCH_BASELINE=1``: CI fails if lines/s regresses more than 20%
below the recorded floor.  The gate is opt-in because absolute
throughput on developer laptops varies far more than 20%.
"""

import json
import os
import sys
import time

from _tables import RESULTS_DIR, fmt, report

from repro.core import Anonymizer

JOBS_SWEEP = (1, 2, 4)
REPEATS = 3

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "baselines", "BENCH_parallel_baseline.json"
)
#: Fail the (opt-in) regression gate below baseline * (1 - tolerance).
BASELINE_TOLERANCE = 0.20


def _usable_cpus() -> int:
    """Cores this process may schedule on (affinity/cgroup-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_run(configs, jobs):
    """Best-of-REPEATS wall time for a fresh freeze-then-rewrite run."""
    best = float("inf")
    outputs = None
    for _ in range(REPEATS):
        anonymizer = Anonymizer(salt=b"par-bench")
        start = time.perf_counter()
        result = anonymizer.anonymize_network(
            dict(configs), two_pass=True, jobs=jobs
        )
        best = min(best, time.perf_counter() - start)
        outputs = result.configs
    return best, outputs


def test_parallel_speedup(dataset):
    sample = sorted(dataset, key=lambda n: -len(n.configs))[0]
    total_lines = sum(len(t.splitlines()) for t in sample.configs.values())
    cpus_usable = _usable_cpus()
    cpu_count = os.cpu_count() or 1
    cpus_limited = cpus_usable < max(JOBS_SWEEP)

    timings = {}
    baseline_outputs = None
    for jobs in JOBS_SWEEP:
        if jobs > cpus_usable:
            print(
                "warning: jobs={} exceeds the {} usable core(s); measuring "
                "anyway, but expect overhead, not speedup".format(
                    jobs, cpus_usable
                ),
                file=sys.stderr,
            )
        seconds, outputs = _timed_run(sample.configs, jobs)
        timings[jobs] = seconds
        if baseline_outputs is None:
            baseline_outputs = outputs
        else:
            # The headline guarantee, measured on the bench corpus too.
            assert outputs == baseline_outputs

    probe = Anonymizer(salt=b"par-bench")
    payload = {
        "experiment": "BENCH_parallel",
        "active_plugins": sorted(probe.active_plugin_families),
        "network": sample.name,
        "files": len(sample.configs),
        "lines": total_lines,
        "cpu_count": cpu_count,
        "cpus": cpus_usable,  # usable (affinity-aware); kept under the old key
        "cpus_limited": cpus_limited,
        "repeats": REPEATS,
        "seconds": {str(jobs): timings[jobs] for jobs in JOBS_SWEEP},
        "speedup": {
            str(jobs): timings[1] / timings[jobs] for jobs in JOBS_SWEEP
        },
        "lines_per_second": {
            str(jobs): total_lines / timings[jobs] for jobs in JOBS_SWEEP
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_parallel.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    rows = [
        ("sample", "(4.3M lines total)",
         "{} files / {} lines".format(len(sample.configs), total_lines),
         sample.name),
        ("cores (usable/total)", "",
         "{}/{}{}".format(
             cpus_usable, cpu_count, "  [cpus-limited]" if cpus_limited else ""
         ), ""),
    ]
    for jobs in JOBS_SWEEP:
        rows.append((
            "jobs={}".format(jobs), "",
            "{} s  ({}x)".format(
                fmt(timings[jobs], 2), fmt(payload["speedup"][str(jobs)], 2)
            ),
            "{} lines/s".format(fmt(total_lines / timings[jobs], 0)),
        ))
    report("E22", "parallel rewrite speedup", rows)

    if cpus_usable >= 4:
        assert payload["speedup"]["4"] >= 2.0, (
            "expected >= 2x speedup at 4 workers on a machine with {} "
            "usable cores, got {:.2f}x".format(
                cpus_usable, payload["speedup"]["4"]
            )
        )

    if os.environ.get("REPRO_BENCH_BASELINE") == "1":
        with open(BASELINE_PATH) as handle:
            baseline = json.load(handle)
        # Scale-invariant gate: compare single-core lines/s, not seconds.
        floor = baseline["lines_per_second"]["1"] * (1.0 - BASELINE_TOLERANCE)
        measured = payload["lines_per_second"]["1"]
        assert measured >= floor, (
            "single-core throughput regressed: {:.0f} lines/s is below the "
            "gate of {:.0f} (baseline {:.0f} - {:.0%} tolerance); if the "
            "slowdown is intentional, refresh {}".format(
                measured, floor, baseline["lines_per_second"]["1"],
                BASELINE_TOLERANCE, BASELINE_PATH,
            )
        )
