"""E7 + E14 — regexp language computation and rewrite styles (Section 4.4).

E7: the paper's brute-force over all 2^16 ASNs is cheap; the language of
``70[1-3]`` is exactly {701, 702, 703} (with boundaries); rewrites accept
exactly the permuted language.

E14 (the paper's noted-but-unneeded optimization): minimum-DFA regexp
reconstruction vs flat alternation — output pattern sizes.
"""

from _tables import fmt, report

from repro.core.asn import AsnPermutation
from repro.core.community import CommunityAnonymizer
from repro.core.regexlang import asn_language, rewrite_aspath_regex, rewrite_community_regex

PATTERNS = [
    "_70[1-3]_",
    "_70[2-5]_",
    "(_1239_|_70[2-5]_)",
    "_123[0-9]_",
    "_6451[2-9]_",
    "_1[0-2][0-9][0-9]_",
]


def test_language_computation(benchmark):
    language = benchmark(asn_language, "_70[1-3]_")
    assert language == {701, 702, 703}


def test_rewrite_sizes_alternation_vs_mindfa(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    perm = AsnPermutation(b"e14-salt")
    rows = []
    for pattern in PATTERNS:
        alternation = rewrite_aspath_regex(pattern, perm.map_asn, style="alternation")
        mindfa = rewrite_aspath_regex(pattern, perm.map_asn, style="mindfa")
        assert asn_language(alternation.rewritten) == asn_language(mindfa.rewritten)
        language_size = len(asn_language(pattern))
        rows.append(
            (pattern,
             "alternation ({} ASNs)".format(language_size),
             "{} vs {} chars".format(
                 len(alternation.rewritten), len(mindfa.rewritten)),
             "min-DFA saves {}%".format(
                 round(100 * (1 - len(mindfa.rewritten) /
                              max(1, len(alternation.rewritten)))))))
    report("E14", "rewrite size: flat alternation vs minimum-DFA regexp", rows)


def test_community_rewrite_length(benchmark):
    """The paper: 'The resulting regexps could be very long, but this is
    not a problem when anonymized configs are primarily analyzed by
    software tools.'  Quantify 'very long' for the Figure 1 pattern."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    perm = AsnPermutation(b"e7-salt")
    community = CommunityAnonymizer(b"e7-salt", asn_map=perm)
    alternation = rewrite_community_regex(
        "_701:7[1-5].._", perm.map_asn, community.map_value, style="alternation"
    )
    mindfa = rewrite_community_regex(
        "_701:7[1-5].._", perm.map_asn, community.map_value, style="mindfa"
    )
    rows = [
        ("original pattern", "15 chars", "15 chars", "_701:7[1-5].._"),
        ("accepted community values", "500", "500", "7100-7599"),
        ("alternation rewrite length", "very long",
         str(len(alternation.rewritten)) + " chars", ""),
        ("min-DFA rewrite length", "(future work)",
         str(len(mindfa.rewritten)) + " chars",
         fmt(len(mindfa.rewritten) / len(alternation.rewritten) * 100) + "% of alternation"),
    ]
    report("E7", "community regexp rewrite (Figure 1 line 31)", rows)
    assert len(mindfa.rewritten) < len(alternation.rewritten)


def test_full_universe_scan_cost(benchmark):
    """Scanning all 2^16 ASNs per regexp is the paper's key feasibility
    claim; measure it directly."""
    benchmark(asn_language, "(_1239_|_70[2-5]_|_123[0-9]_)")
