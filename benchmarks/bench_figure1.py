"""E1 — Figure 1: the paper's example config anonymizes correctly.

Checks every transformation Section 2 demands of the Figure 1 excerpts and
benchmarks single-config anonymization latency.
"""

import re

from _tables import report

from repro.core import Anonymizer
from repro.core.regexlang import asn_language
from repro.netutil import classful_prefix_len, ip_to_int, network_address

FIGURE1 = """\
hostname cr1.lax.foo.com
!
banner motd ^C
FooNet contact xxx@foo.com
Access strictly prohibited!
^C
!
interface Ethernet0
 description Foo Corp's LAX Main St offices
 ip address 1.1.1.1 255.255.255.0
!
interface Serial1/0.5 point-to-point
 description cr1.sfo-serial3/0.8
 ip address 1.2.3.4 255.255.255.252
!
router bgp 1111
 redistribute rip
 neighbor 2.3.4.5 remote-as 701
 neighbor 2.3.4.5 route-map UUNET-import in
 neighbor 2.3.4.5 route-map UUNET-export out
!
route-map UUNET-import deny 10
 match as-path 50
 match community 100
route-map UUNET-import permit 20
route-map UUNET-export permit 10
 match ip address 143
 set community 701:7100
!
access-list 143 permit ip 1.1.1.0 0.0.0.255 2.0.0.0 0.255.255.255
ip community-list 100 permit 701:7[1-5]..
ip as-path access-list 50 permit (_1239_|_70[2-5]_)
!
router rip
 network 1.0.0.0
"""


def _checks(anon, output):
    checks = []

    def check(name, ok):
        checks.append((name, ok))

    check("comments/banner stripped", "FooNet" not in output and "description" not in output)
    check("hostname hashed", "foo.com" not in output)
    check("owner ASN 1111 permuted",
          "router bgp {}".format(anon.asn_map.map_asn(1111)) in output)
    check("peer ASN 701 permuted",
          "remote-as {}".format(anon.asn_map.map_asn(701)) in output)
    check("netmasks unchanged",
          "255.255.255.0" in output and "0.255.255.255" in output)
    check("route-map name hashed consistently",
          "UUNET" not in output
          and len(set(re.findall(r"route-map (\S+)-import", output))) == 1)
    rip_net = re.search(r"^ network (\S+)$", output, re.M).group(1)
    eth = re.search(r"ip address (\S+) 255.255.255.0", output).group(1)
    check("RIP network still covers interface",
          network_address(ip_to_int(eth), classful_prefix_len(ip_to_int(rip_net)))
          == ip_to_int(rip_net))
    aspath = [l for l in output.splitlines() if "as-path access-list" in l][0]
    rewritten = aspath.split("permit ", 1)[1]
    expected = {anon.asn_map.map_asn(n) for n in asn_language("(_1239_|_70[2-5]_)")}
    check("as-path regexp language == permuted language",
          asn_language(rewritten) == expected)
    check("community regexp rewritten", "701:7" not in output)
    return checks


def test_figure1_transformations(benchmark):
    output = benchmark(lambda: Anonymizer(salt=b"figure1-salt").anonymize_text(FIGURE1))
    # A fresh anonymizer under the same salt reproduces the same maps
    # (full determinism), giving us the expected values to check against.
    reference = Anonymizer(salt=b"figure1-salt")
    reference.anonymize_text(FIGURE1)
    checks = _checks(reference, output)
    rows = [
        (name, "preserved/removed", "OK" if ok else "FAIL", "")
        for name, ok in checks
    ]
    report("E1", "Figure 1 anonymizes correctly", rows)
    assert all(ok for _, ok in checks)
