"""E21 (extension) — ablation of the paper's IP-mapping extensions.

Section 4.3 argues the stored-trie scheme was chosen because it can be
shaped: class preservation keeps classful commands (RIP/EIGRP ``network``)
meaningful, and subnet shaping keeps output readable.  This experiment
turns each knob off and measures what actually breaks — the empirical
justification for the paper's design choices.
"""

from _tables import report

from repro.configmodel import ParsedNetwork
from repro.core import Anonymizer, AnonymizerConfig
from repro.core.ipanon import PrefixPreservingMap
from repro.iosgen import NetworkSpec, generate_network
from repro.netutil import ip_to_int, trailing_zero_bits
from repro.validation import compare_characteristics, compare_designs


def _rip_network():
    return generate_network(
        NetworkSpec(
            name="ablation-rip", kind="enterprise", seed=55, num_pops=3,
            igp="rip", lans_per_access=(2, 5), static_burst=(0, 4),
        )
    )


def _suites(network, salt=b"ablate", **config_kwargs):
    anonymizer = Anonymizer(AnonymizerConfig(salt=salt, **config_kwargs))
    result = anonymizer.anonymize_network(dict(network.configs))
    pre = ParsedNetwork.from_configs(network.configs)
    post = ParsedNetwork.from_configs(result.configs)
    return (
        compare_characteristics(pre, post).passed,
        compare_designs(pre, post).passed,
    )


def _class_changing_salt():
    """A salt under which disabling class preservation actually moves the
    10/8 block out of class A (the flip draws are salt-dependent, so the
    demonstration must pick a salt where the coin lands on 'change')."""
    from repro.netutil import address_class

    for index in range(64):
        salt = "ablate-{}".format(index).encode()
        probe = PrefixPreservingMap(salt, class_preserving=False)
        if address_class(probe.map_int(0x0A000001)) != "A":
            return salt
    raise AssertionError("no class-changing salt found in 64 tries")


def test_knob_ablation(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    network = _rip_network()

    baseline = _suites(network)
    no_class = _suites(network, salt=_class_changing_salt(), class_preserving=False)
    no_shaping = _suites(network, subnet_shaping=False)

    # Subnet shaping success rate with and without the knob (measured on
    # a fresh trie, subnet addresses inserted first).
    def shaping_rate(enabled):
        mapping = PrefixPreservingMap(b"ablate-shape", subnet_shaping=enabled)
        bases = [ip_to_int("10.{}.{}.0".format(i, j)) for i in range(1, 11)
                 for j in range(0, 250, 25)]
        shaped = sum(trailing_zero_bits(mapping.map_int(b)) >= 8 for b in bases)
        return shaped, len(bases)

    shaped_on, total = shaping_rate(True)
    shaped_off, _ = shaping_rate(False)

    rows = [
        ("baseline: suites 1+2 pass", "(the paper's config)",
         "yes" if all(baseline) else "NO", ""),
        ("class preservation OFF: suites pass", "classful commands break",
         "suite1={} suite2={}".format(*no_class),
         "RIP `network` coverage is lost exactly as §4.3 warns"),
        ("subnet shaping OFF: suites pass", "readability only",
         "suite1={} suite2={}".format(*no_shaping),
         "semantics survive; §4.3 calls shaping a readability aid"),
        ("subnet addresses shaped (knob on)", "always (inserted first)",
         "{}/{}".format(shaped_on, total), ""),
        ("subnet addresses shaped (knob off)", "rarely",
         "{}/{}".format(shaped_off, total), "random tails"),
    ]
    report("E21", "ablation of the Section 4.3 mapping extensions", rows)

    assert all(baseline)
    # Class preservation is load-bearing for classful designs:
    assert not all(no_class)
    # Subnet shaping is cosmetic: everything still validates without it.
    assert all(no_shaping)
    assert shaped_on == total
    assert shaped_off < total // 2
